// Crash-restart loopback test: durable stores under three real evs_node
// processes hosting a ReplicatedFile on 127.0.0.1.
//
//   usage: crash_restart_loopback_test <path-to-evs_node> <path-to-trace_check>
//
// The contract under test (the durable-StableStore ISSUE): a SIGKILLed
// node restarted from its store directory must come back as a *new*
// incarnation with its pre-crash object state, and rejoin the group via a
// bounded-delta state transfer — not a full snapshot copy.
//   1. spawn three `--object file` nodes, each with a `store <dir>` config
//      line; converge, check every up line reports incarnation=1,
//   2. build file content with fenced Appends through the front door and
//      wait until every replica reads it back,
//   3. fast-restart regression (the incarnation-reuse bug): SIGKILL node 1
//      and respawn it immediately — within one heartbeat interval, before
//      the survivors can even suspect it. The restarted process must boot
//      as incarnation=2 (bumped from the store, never reused; peers drop
//      frames from a reused incarnation as stale, which wedged exactly
//      this restart before the fix), re-enter the 3-view and serve again,
//   4. bounded-delta rejoin: SIGKILL node 2, append a small suffix through
//      the survivors, respawn node 2 from its store. It must recover the
//      pre-crash prefix from disk, Pull against that basis, and install a
//      delta — delta_bytes_received is on the order of the suffix, far
//      below the prefix it did NOT re-transfer; zero full fallbacks, zero
//      snapshot decode errors. Its store metrics must show recovery
//      (recovered records/keys) and group commit (fsyncs < puts),
//   5. SIGTERM everything; clean exits,
//   6. trace_check --merge over the union of all five process traces
//      (three originals + two restarted incarnations): zero violations.
//
// Plain main() runner (no gtest); RUN_SERIAL in ctest (fixed loopback
// ports, real forked processes).
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "runtime/svc.hpp"
#include "svc/protocol.hpp"

namespace {

using evs::Bytes;
using evs::runtime::SvcOp;
using evs::runtime::SvcRequest;
using evs::runtime::SvcResponse;
using evs::runtime::SvcStatus;

constexpr int kNodes = 3;

std::function<void()> g_on_fail;

[[noreturn]] void die(const std::string& message) {
  std::fprintf(stderr, "FAIL: %s\n", message.c_str());
  if (g_on_fail) g_on_fail();
  std::exit(1);
}

std::uint16_t free_port() {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) die("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    die("bind() failed");
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    die("getsockname() failed");
  const std::uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

struct Child {
  pid_t pid = -1;
  int out_fd = -1;
  std::string out;
  bool exited = false;
  int exit_status = -1;
};

Child spawn_node(const std::string& binary, const std::string& config_path,
                 const std::string& trace_dir, const std::string& trace_name) {
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) die("pipe() failed");
  const pid_t pid = ::fork();
  if (pid < 0) die("fork() failed");
  if (pid == 0) {
    ::dup2(pipe_fds[1], STDOUT_FILENO);
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    ::setenv("EVS_TRACE_OUT", trace_dir.c_str(), 1);
    // --trace-flush-ms keeps a near-current trace on disk so the SIGKILL
    // victims still contribute to the merged trace_check pass.
    ::execl(binary.c_str(), binary.c_str(), "--config", config_path.c_str(),
            "--object", "file", "--trace-flush-ms", "100", "--trace-name",
            trace_name.c_str(), static_cast<char*>(nullptr));
    std::perror("execl");
    _exit(127);
  }
  ::close(pipe_fds[1]);
  ::fcntl(pipe_fds[0], F_SETFL, O_NONBLOCK);
  Child child;
  child.pid = pid;
  child.out_fd = pipe_fds[0];
  return child;
}

bool drain(std::vector<Child>& children, int timeout_ms) {
  std::vector<pollfd> fds;
  for (Child& c : children)
    if (c.out_fd >= 0) fds.push_back({c.out_fd, POLLIN, 0});
  if (fds.empty()) return false;
  if (::poll(fds.data(), fds.size(), timeout_ms) <= 0) return false;
  bool got = false;
  for (Child& c : children) {
    if (c.out_fd < 0) continue;
    char buf[4096];
    for (;;) {
      const ssize_t n = ::read(c.out_fd, buf, sizeof(buf));
      if (n > 0) {
        c.out.append(buf, static_cast<std::size_t>(n));
        got = true;
      } else if (n == 0) {
        ::close(c.out_fd);
        c.out_fd = -1;
        break;
      } else {
        break;  // EAGAIN
      }
    }
  }
  return got;
}

bool await(std::vector<Child>& children, int timeout_ms,
           const std::function<bool()>& pred) {
  for (int waited = 0; waited < timeout_ms;) {
    if (pred()) return true;
    drain(children, 50);
    waited += 50;
  }
  return pred();
}

bool contains_after(const std::string& text, std::size_t offset,
                    const std::string& needle) {
  return text.find(needle, offset) != std::string::npos;
}

/// Blocks until the periodic trace flush (--trace-flush-ms 100) has
/// written `path` at least once — a SIGKILL before the first flush
/// would otherwise leave that incarnation out of the merged check.
void await_trace(const std::string& path) {
  for (int waited = 0; waited < 10000; waited += 50) {
    if (::access(path.c_str(), R_OK) == 0) return;
    ::usleep(50 * 1000);
  }
  die("trace never flushed: " + path);
}

std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  timeval tv{5, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  if (::send(fd, request.data(), request.size(), 0) !=
      static_cast<ssize_t>(request.size())) {
    ::close(fd);
    return {};
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0)
    response.append(buf, static_cast<std::size_t>(n));
  ::close(fd);
  return response;
}

long long json_number(const std::string& body, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = body.find(needle);
  if (at == std::string::npos) return -1;
  return std::atoll(body.c_str() + at + needle.size());
}

int run_and_wait(const std::vector<std::string>& args) {
  const pid_t pid = ::fork();
  if (pid < 0) die("fork() failed");
  if (pid == 0) {
    std::vector<char*> argv;
    for (const std::string& a : args)
      argv.push_back(const_cast<char*>(a.c_str()));
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    std::perror("execv");
    _exit(127);
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

void reap(Child& child) {
  int status = 0;
  if (::waitpid(child.pid, &status, 0) == child.pid) {
    child.exited = true;
    child.exit_status = status;
  }
  while (child.out_fd >= 0) {
    char buf[4096];
    const ssize_t n = ::read(child.out_fd, buf, sizeof(buf));
    if (n > 0) {
      child.out.append(buf, static_cast<std::size_t>(n));
    } else {
      ::close(child.out_fd);
      child.out_fd = -1;
    }
  }
}

void dump_outputs(const std::vector<Child>& children) {
  for (int i = 0; i < static_cast<int>(children.size()); ++i)
    std::fprintf(stderr, "--- node%d output ---\n%s\n", i,
                 children[i].out.c_str());
}

// ------------------------------------------------------------- client ---

class SvcClient {
 public:
  explicit SvcClient(std::uint16_t port) : port_(port) {}
  ~SvcClient() { close_fd(); }

  void connect_or_die() {
    close_fd();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) die("client socket() failed");
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port_);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
      die("client connect() to svc port failed");
    rx_.clear();
    rx_off_ = 0;
  }

  /// Connects lazily and retries the connect: a freshly respawned node's
  /// svc listener may be a beat behind its up line.
  bool try_connect() {
    close_fd();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port_);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      close_fd();
      return false;
    }
    rx_.clear();
    rx_off_ = 0;
    return true;
  }

  std::uint64_t send_request(const SvcRequest& req) {
    if (fd_ < 0) connect_or_die();
    const std::uint64_t id = next_id_++;
    const Bytes body = evs::svc::encode_request(id, req);
    std::string frame;
    evs::svc::append_frame(frame, body);
    std::size_t sent = 0;
    while (sent < frame.size()) {
      const ssize_t n = ::send(fd_, frame.data() + sent, frame.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) die("client send() failed");
      sent += static_cast<std::size_t>(n);
    }
    return id;
  }

  SvcResponse recv_response(std::uint64_t id, int timeout_ms = 10000) {
    for (int waited = 0;;) {
      const auto parked = parked_.find(id);
      if (parked != parked_.end()) {
        SvcResponse resp = parked->second;
        parked_.erase(parked);
        return resp;
      }
      Bytes frame_body;
      switch (evs::svc::next_frame(rx_, rx_off_, frame_body)) {
        case evs::svc::FrameStatus::Frame: {
          const auto wire = evs::svc::decode_response(frame_body);
          parked_.emplace(wire.request_id, wire.resp);
          continue;
        }
        case evs::svc::FrameStatus::Malformed:
          die("server sent a malformed frame");
        case evs::svc::FrameStatus::NeedMore:
          break;
      }
      if (waited >= timeout_ms)
        die("request " + std::to_string(id) +
            " hung: no typed response within the deadline");
      pollfd pfd{fd_, POLLIN, 0};
      if (::poll(&pfd, 1, 200) > 0) {
        char buf[4096];
        const ssize_t n = ::read(fd_, buf, sizeof(buf));
        if (n > 0)
          rx_.append(buf, static_cast<std::size_t>(n));
        else if (n == 0)
          die("server closed the connection mid-request");
      } else {
        waited += 200;
      }
    }
  }

  SvcResponse call(const SvcRequest& req, int timeout_ms = 10000) {
    return recv_response(send_request(req), timeout_ms);
  }

 private:
  void close_fd() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  std::uint16_t port_;
  int fd_ = -1;
  std::string rx_;
  std::size_t rx_off_ = 0;
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, SvcResponse> parked_;
};

SvcRequest make_get(std::uint64_t epoch) {
  SvcRequest r;
  r.op = SvcOp::Get;
  r.view_epoch = epoch;
  return r;
}

SvcRequest make_append(std::string value, std::uint64_t epoch) {
  SvcRequest r;
  r.op = SvcOp::Append;
  r.view_epoch = epoch;
  r.value = std::move(value);
  return r;
}

/// Appends with the protocol's own retry contract: Unavailable means
/// "retry later" (settling), InvalidEpoch re-fences from the answer.
void append_until_ok(SvcClient& client, const std::string& value,
                     std::uint64_t& epoch, const char* what) {
  for (int waited = 0; waited < 30000;) {
    const SvcResponse resp = client.call(make_append(value, epoch));
    if (resp.status == SvcStatus::Ok) return;
    if (resp.status == SvcStatus::InvalidEpoch) {
      epoch = resp.view_epoch;
      continue;
    }
    if (resp.status != SvcStatus::Unavailable)
      die(std::string(what) + ": Append answered " +
          evs::runtime::to_string(resp.status) + " instead of Ok");
    const int backoff_ms =
        resp.retry_after_ms > 0 ? static_cast<int>(resp.retry_after_ms) : 50;
    ::usleep(backoff_ms * 1000);
    waited += backoff_ms;
  }
  die(std::string(what) + ": Append never succeeded");
}

/// Polls with wildcard Gets until the file content equals `want`.
void await_content(SvcClient& client, const std::string& want,
                   const char* what) {
  for (int waited = 0; waited < 30000; waited += 100) {
    const SvcResponse resp = client.call(make_get(0));
    if (resp.status == SvcStatus::Ok && resp.value == want) return;
    if (resp.status != SvcStatus::Ok && resp.status != SvcStatus::Unavailable)
      die(std::string(what) + ": Get answered " +
          evs::runtime::to_string(resp.status));
    ::usleep(100 * 1000);
  }
  die(std::string(what) + ": content never converged (" +
      std::to_string(want.size()) + "B expected)");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: %s <evs_node> <trace_check>\n", argv[0]);
    return 2;
  }
  const std::string evs_node = argv[1];
  const std::string trace_check = argv[2];

  char dir_template[] = "/tmp/evs_crash_restart_XXXXXX";
  if (::mkdtemp(dir_template) == nullptr) die("mkdtemp() failed");
  const std::string dir = dir_template;

  std::uint16_t ports[kNodes];
  std::uint16_t admin_ports[kNodes];
  std::uint16_t svc_ports[kNodes];
  for (auto& p : ports) p = free_port();
  for (auto& p : admin_ports) p = free_port();
  for (auto& p : svc_ports) p = free_port();

  std::vector<std::string> config_paths;
  for (int i = 0; i < kNodes; ++i) {
    const std::string path = dir + "/node" + std::to_string(i) + ".conf";
    std::ofstream os(path);
    os << "self " << i << "\n";
    for (int j = 0; j < kNodes; ++j)
      os << "peer " << j << " 127.0.0.1:" << ports[j] << "\n";
    for (int j = 0; j < kNodes; ++j)
      os << "admin " << j << " 127.0.0.1:" << admin_ports[j] << "\n";
    for (int j = 0; j < kNodes; ++j)
      os << "svc " << j << " 127.0.0.1:" << svc_ports[j] << "\n";
    // The whole point of this test: every node persists through a WAL
    // store and restarts from it.
    os << "store " << dir << "/store" << i << "\n";
    config_paths.push_back(path);
  }

  if (const char* artifacts = std::getenv("EVS_LOOPBACK_ARTIFACTS")) {
    const std::string out_dir = artifacts;
    g_on_fail = [out_dir, &admin_ports]() {
      for (int i = 0; i < kNodes; ++i) {
        const std::string metrics = http_get(admin_ports[i], "/metrics");
        if (metrics.empty()) continue;
        std::ofstream os(out_dir + "/crash-restart-node" + std::to_string(i) +
                         ".metrics.json");
        os << metrics;
      }
    };
  }

  std::vector<Child> children;
  std::vector<std::string> trace_names;
  for (int i = 0; i < kNodes; ++i) {
    const std::string name = "cr-site" + std::to_string(i) + "-run1";
    trace_names.push_back(name);
    children.push_back(spawn_node(evs_node, config_paths[i], dir, name));
  }

  // 1. Fresh boot: everyone up as incarnation 1, common 3-view, svc ports.
  const std::string full_view = "size=3 members=0,1,2";
  if (!await(children, 30000, [&]() {
        for (const Child& c : children) {
          if (!contains_after(c.out, 0, "incarnation=1")) return false;
          if (!contains_after(c.out, 0, "svc site=")) return false;
          if (!contains_after(c.out, 0, full_view)) return false;
        }
        return true;
      })) {
    dump_outputs(children);
    die("nodes never converged to the 3-view as incarnation 1");
  }
  std::fprintf(stderr, "ok: 3-view installed, all incarnation=1\n");

  SvcClient client0(svc_ports[0]);
  SvcClient client1(svc_ports[1]);
  SvcClient client2(svc_ports[2]);

  // 2. Build the file prefix through the front door: big enough that
  //    re-copying it later would be conspicuous next to the delta.
  const SvcResponse hello = client0.call(make_get(0));
  if (hello.status != SvcStatus::Ok) die("wildcard Get was not Ok");
  std::uint64_t epoch = hello.view_epoch;
  if (epoch == 0) die("Ok response carries no view epoch");
  std::string expected;
  constexpr int kPrefixAppends = 40;
  for (int i = 0; i < kPrefixAppends; ++i) {
    std::string piece = "prefix" + std::to_string(i) + ":";
    piece.resize(64, 'p');
    append_until_ok(client0, piece, epoch, "prefix Append");
    expected += piece;
  }
  await_content(client1, expected, "prefix on node1");
  await_content(client2, expected, "prefix on node2");
  const std::size_t prefix_bytes = expected.size();
  std::fprintf(stderr, "ok: %zuB prefix replicated everywhere\n",
               prefix_bytes);

  // 3. Fast restart (the incarnation-reuse regression): SIGKILL node 1 and
  //    respawn it immediately, faster than any failure detection. Before
  //    the monotonic bump, the restarted process reused incarnation 1 and
  //    its peers silently dropped its frames as stale duplicates.
  const std::size_t fast_offset[kNodes] = {children[0].out.size(),
                                           children[1].out.size(),
                                           children[2].out.size()};
  await_trace(dir + "/cr-site1-run1.trace.jsonl");
  ::kill(children[1].pid, SIGKILL);
  reap(children[1]);
  trace_names.push_back("cr-site1-run2");
  children[1] = spawn_node(evs_node, config_paths[1], dir, "cr-site1-run2");
  if (!await(children, 30000, [&]() {
        return contains_after(children[1].out, 0, "incarnation=2");
      })) {
    dump_outputs(children);
    die("fast-restarted node 1 did not bump to incarnation=2");
  }
  if (!await(children, 60000, [&]() {
        for (int i = 0; i < kNodes; ++i) {
          const std::size_t from = i == 1 ? 0 : fast_offset[i];
          if (!contains_after(children[i].out, from, full_view)) return false;
        }
        return true;
      })) {
    dump_outputs(children);
    die("fleet never re-formed the 3-view around the fast-restarted node");
  }
  // The restarted incarnation must actually serve: an append through it
  // lands, and is visible elsewhere.
  if (!client1.try_connect()) {
    for (int i = 0; i < 50 && !client1.try_connect(); ++i) ::usleep(100 * 1000);
  }
  std::string tail1 = "after-fast-restart:";
  tail1.resize(32, 'f');
  append_until_ok(client1, tail1, epoch, "post-fast-restart Append");
  expected += tail1;
  await_content(client0, expected, "fast-restart append on node0");
  std::fprintf(stderr,
               "ok: fast restart bumped incarnation, rejoined and serves\n");

  // 4. Bounded-delta rejoin: SIGKILL node 2, advance the file while it is
  //    down, restart it from disk.
  const std::size_t kill_offset[2] = {children[0].out.size(),
                                      children[1].out.size()};
  await_trace(dir + "/cr-site2-run1.trace.jsonl");
  ::kill(children[2].pid, SIGKILL);
  reap(children[2]);
  const std::string survivor_view = "size=2 members=0,1";
  if (!await(children, 60000, [&]() {
        return contains_after(children[0].out, kill_offset[0],
                              survivor_view) &&
               contains_after(children[1].out, kill_offset[1], survivor_view);
      })) {
    dump_outputs(children);
    die("survivors never installed the 2-view after the kill");
  }
  std::string suffix;
  constexpr int kSuffixAppends = 4;
  for (int i = 0; i < kSuffixAppends; ++i) {
    std::string piece = "suffix" + std::to_string(i) + ":";
    piece.resize(32, 's');
    append_until_ok(client0, piece, epoch, "suffix Append");
    suffix += piece;
  }
  expected += suffix;
  await_content(client0, expected, "suffix on node0");
  std::fprintf(stderr, "ok: %zuB suffix written while node 2 was down\n",
               suffix.size());

  const std::size_t rejoin_offset[2] = {children[0].out.size(),
                                        children[1].out.size()};
  trace_names.push_back("cr-site2-run2");
  children[2] = spawn_node(evs_node, config_paths[2], dir, "cr-site2-run2");
  if (!await(children, 30000, [&]() {
        return contains_after(children[2].out, 0, "incarnation=2");
      })) {
    dump_outputs(children);
    die("restarted node 2 did not bump to incarnation=2");
  }
  if (!await(children, 60000, [&]() {
        if (!contains_after(children[2].out, 0, full_view)) return false;
        for (int i = 0; i < 2; ++i)
          if (!contains_after(children[i].out, rejoin_offset[i], full_view))
            return false;
        return true;
      })) {
    dump_outputs(children);
    die("fleet never re-formed the 3-view around restarted node 2");
  }
  if (!client2.try_connect()) {
    for (int i = 0; i < 50 && !client2.try_connect(); ++i) ::usleep(100 * 1000);
  }
  await_content(client2, expected, "converged content on restarted node 2");
  std::fprintf(stderr, "ok: restarted node 2 rejoined with the full file\n");

  // ...and it got there via a bounded delta over its recovered state, not
  // a full copy. All of this is first-class on its /metrics.
  std::string metrics2;
  if (!await(children, 15000, [&]() {
        metrics2 = http_get(admin_ports[2], "/metrics");
        return json_number(metrics2, "node.delta_installs") >= 1;
      })) {
    std::fprintf(stderr, "metrics: %s\n", metrics2.c_str());
    die("restarted node 2 reports no delta install");
  }
  if (json_number(metrics2, "node.delta_pulls") < 1)
    die("restarted node 2 sent no delta Pull");
  if (json_number(metrics2, "node.delta_full_fallbacks") != 0)
    die("delta transfer fell back to a full snapshot");
  if (json_number(metrics2, "node.snapshot_decode_errors") != 0)
    die("restart path counted snapshot decode errors");
  const long long delta_bytes = json_number(metrics2, "node.delta_bytes_received");
  if (delta_bytes <= 0) die("no delta bytes received");
  if (delta_bytes >= static_cast<long long>(prefix_bytes))
    die("delta (" + std::to_string(delta_bytes) + "B) is not bounded: the " +
        std::to_string(prefix_bytes) + "B prefix was re-transferred");
  // Store-side evidence: it really recovered from disk, and the WAL group
  // commit amortised syncs across puts.
  if (json_number(metrics2, "store.recovered_records") +
          json_number(metrics2, "store.recovered_snapshot_keys") <
      1)
    die("restarted node 2 recovered nothing from its store");
  const long long puts = json_number(metrics2, "store.puts");
  const long long fsyncs = json_number(metrics2, "store.fsync_calls");
  if (puts < 1 || fsyncs < 1) die("store counters missing from /metrics");
  if (fsyncs >= puts)
    die("group commit did not amortise: " + std::to_string(fsyncs) +
        " fsyncs for " + std::to_string(puts) + " puts");
  std::fprintf(stderr,
               "ok: bounded delta (%lldB vs %zuB prefix), recovery and "
               "group commit on /metrics\n",
               delta_bytes, prefix_bytes);

  // The source side deferred its offer and served the delta.
  const std::string metrics0 = http_get(admin_ports[0], "/metrics");
  if (json_number(metrics0, "node.deferred_offers") < 1)
    die("source representative never deferred an offer");
  if (json_number(metrics0, "node.delta_serves") < 1)
    die("source representative served no delta");
  std::fprintf(stderr, "ok: source deferred offers and served deltas\n");

  // 5. Graceful shutdown.
  for (int i = 0; i < kNodes; ++i) ::kill(children[i].pid, SIGTERM);
  for (int i = 0; i < kNodes; ++i) reap(children[i]);
  for (int i = 0; i < kNodes; ++i) {
    if (!WIFEXITED(children[i].exit_status) ||
        WEXITSTATUS(children[i].exit_status) != 0) {
      dump_outputs(children);
      die("node" + std::to_string(i) + " exited uncleanly");
    }
    if (!contains_after(children[i].out, 0, "summary ")) {
      dump_outputs(children);
      die("node" + std::to_string(i) + " printed no summary");
    }
  }
  std::fprintf(stderr, "ok: all nodes exited cleanly\n");

  // 6. The union of every incarnation's trace passes the checker.
  std::vector<std::string> check = {trace_check, "--merge"};
  for (const std::string& name : trace_names) {
    const std::string path = dir + "/" + name + ".trace.jsonl";
    if (::access(path.c_str(), R_OK) != 0) die("missing trace: " + path);
    check.push_back(path);
  }
  if (run_and_wait(check) != 0) {
    dump_outputs(children);
    die("trace_check found violations in the merged traces");
  }
  std::fprintf(stderr, "ok: merged traces across restarts pass trace_check\n");

  run_and_wait({"/bin/rm", "-rf", dir});
  std::printf("PASS\n");
  return 0;
}
