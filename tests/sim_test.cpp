#include <gtest/gtest.h>

#include <vector>

#include "common/check.hpp"
#include "sim/fault.hpp"
#include "sim/network.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"
#include "sim/stable_store.hpp"
#include "sim/world.hpp"

namespace evs::sim {
namespace {

TEST(Scheduler, FiresInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule_at(30, [&]() { order.push_back(3); });
  sched.schedule_at(10, [&]() { order.push_back(1); });
  sched.schedule_at(20, [&]() { order.push_back(2); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), 30u);
}

TEST(Scheduler, SimultaneousEventsFifoByInsertion) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    sched.schedule_at(100, [&order, i]() { order.push_back(i); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, CancelPreventsFiring) {
  Scheduler sched;
  bool fired = false;
  const EventId id = sched.schedule_at(10, [&]() { fired = true; });
  sched.cancel(id);
  sched.run();
  EXPECT_FALSE(fired);
}

TEST(Scheduler, EventsCanScheduleEvents) {
  Scheduler sched;
  int count = 0;
  std::function<void()> chain = [&]() {
    if (++count < 5) sched.schedule_after(10, chain);
  };
  sched.schedule_after(0, chain);
  sched.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sched.now(), 40u);
}

TEST(Scheduler, RunUntilAdvancesClockAndStops) {
  Scheduler sched;
  int fired = 0;
  sched.schedule_at(10, [&]() { ++fired; });
  sched.schedule_at(50, [&]() { ++fired; });
  sched.run_until(20);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sched.now(), 20u);
  sched.run_until(100);
  EXPECT_EQ(fired, 2);
}

TEST(Scheduler, PastTimeClampsToNow) {
  Scheduler sched;
  sched.schedule_at(100, []() {});
  sched.run();
  bool fired = false;
  sched.schedule_at(5, [&]() { fired = true; });  // in the past
  sched.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sched.now(), 100u);
}

TEST(Rng, DeterministicFromSeed) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, ForkIsIndependentStream) {
  Rng a(1);
  Rng fork = a.fork();
  EXPECT_NE(a.next(), fork.next());
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.uniform(13), 13u);
}

TEST(Rng, ExponentialMeanIsRoughlyRight) {
  Rng rng(99);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(100.0);
  EXPECT_NEAR(sum / n, 100.0, 5.0);
}

class CollectingActor : public Actor {
 public:
  void on_message(ProcessId from, const Bytes& payload) override {
    received.emplace_back(from, to_string(payload));
  }
  std::vector<std::pair<ProcessId, std::string>> received;
};

TEST(Network, DeliversBetweenActors) {
  World world(1);
  const auto sites = world.add_sites(2);
  auto& a = world.spawn<CollectingActor>(sites[0]);
  auto& b = world.spawn<CollectingActor>(sites[1]);
  world.run_until_idle();
  world.network().send(a.id(), b.id(), to_bytes("hi"));
  world.run_until_idle();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].first, a.id());
  EXPECT_EQ(b.received[0].second, "hi");
}

TEST(Network, PartitionBlocksCrossTraffic) {
  World world(2);
  const auto sites = world.add_sites(2);
  auto& a = world.spawn<CollectingActor>(sites[0]);
  auto& b = world.spawn<CollectingActor>(sites[1]);
  world.run_until_idle();
  world.network().set_partition({{sites[0]}, {sites[1]}});
  world.network().send(a.id(), b.id(), to_bytes("blocked"));
  world.run_until_idle();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(world.network().stats().dropped_partition, 1u);

  world.network().heal();
  world.network().send(a.id(), b.id(), to_bytes("open"));
  world.run_until_idle();
  EXPECT_EQ(b.received.size(), 1u);
}

TEST(Network, InFlightMessagesDroppedWhenPartitionForms) {
  World world(3);
  const auto sites = world.add_sites(2);
  auto& a = world.spawn<CollectingActor>(sites[0]);
  auto& b = world.spawn<CollectingActor>(sites[1]);
  world.run_until_idle();
  world.network().send(a.id(), b.id(), to_bytes("in-flight"));
  // Partition before the delivery event fires.
  world.network().set_partition({{sites[0]}, {sites[1]}});
  world.run_until_idle();
  EXPECT_TRUE(b.received.empty());
}

TEST(Network, MessageToCrashedIncarnationDropped) {
  World world(4);
  const auto sites = world.add_sites(2);
  auto& a = world.spawn<CollectingActor>(sites[0]);
  auto& b = world.spawn<CollectingActor>(sites[1]);
  world.run_until_idle();
  const ProcessId dead = b.id();
  world.crash(dead);
  world.network().send(a.id(), dead, to_bytes("too late"));
  world.run_until_idle();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(world.network().stats().dropped_dead, 1u);
}

TEST(Network, SendToSiteReachesCurrentIncarnation) {
  World world(5);
  const auto sites = world.add_sites(2);
  auto& a = world.spawn<CollectingActor>(sites[0]);
  world.spawn<CollectingActor>(sites[1]);
  world.run_until_idle();
  world.crash_site(sites[1]);
  auto& b2 = world.spawn<CollectingActor>(sites[1]);
  world.run_until_idle();
  world.network().send_to_site(a.id(), sites[1], to_bytes("hello v2"));
  world.run_until_idle();
  ASSERT_EQ(b2.received.size(), 1u);
  EXPECT_EQ(b2.received[0].second, "hello v2");
}

TEST(Network, LossRateDropsSomeMessages) {
  NetworkConfig cfg;
  cfg.loss_rate = 0.5;
  World world(6, cfg);
  const auto sites = world.add_sites(2);
  auto& a = world.spawn<CollectingActor>(sites[0]);
  auto& b = world.spawn<CollectingActor>(sites[1]);
  world.run_until_idle();
  for (int i = 0; i < 200; ++i)
    world.network().send(a.id(), b.id(), to_bytes("x"));
  world.run_until_idle();
  EXPECT_GT(b.received.size(), 50u);
  EXPECT_LT(b.received.size(), 150u);
}

TEST(Network, FiniteBandwidthDelaysLargeMessages) {
  NetworkConfig cfg;
  cfg.bytes_per_us = 1.0;  // 1 byte per microsecond
  cfg.min_delay = 0;
  cfg.mean_jitter_us = 0.0;
  World world(77, cfg);
  const auto sites = world.add_sites(2);
  auto& a = world.spawn<CollectingActor>(sites[0]);
  auto& b = world.spawn<CollectingActor>(sites[1]);
  world.run_until_idle();
  const SimTime t0 = world.scheduler().now();
  world.network().send(a.id(), b.id(), Bytes(1000, 'x'));
  world.run_until_idle();
  EXPECT_GE(world.scheduler().now() - t0, 1000u);
  EXPECT_EQ(b.received.size(), 1u);
}

TEST(Network, LinkSerialisesQueuedMessages) {
  NetworkConfig cfg;
  cfg.bytes_per_us = 1.0;
  cfg.min_delay = 0;
  cfg.mean_jitter_us = 0.0;
  World world(78, cfg);
  const auto sites = world.add_sites(2);
  auto& a = world.spawn<CollectingActor>(sites[0]);
  auto& b = world.spawn<CollectingActor>(sites[1]);
  world.run_until_idle();
  const SimTime t0 = world.scheduler().now();
  // Two 1000-byte messages sent back to back share one link.
  world.network().send(a.id(), b.id(), Bytes(1000, 'x'));
  world.network().send(a.id(), b.id(), Bytes(1000, 'y'));
  world.run_until_idle();
  EXPECT_GE(world.scheduler().now() - t0, 2000u);
  EXPECT_EQ(b.received.size(), 2u);
}

TEST(World, RecoveryMintsNewIncarnation) {
  World world(7);
  const auto site = world.add_site();
  auto& first = world.spawn<CollectingActor>(site);
  const ProcessId id1 = first.id();
  world.crash_site(site);
  EXPECT_FALSE(world.site_alive(site));
  auto& second = world.spawn<CollectingActor>(site);
  EXPECT_NE(second.id(), id1);
  EXPECT_EQ(second.id().site, site);
  EXPECT_GT(second.id().incarnation, id1.incarnation);
}

TEST(World, DoubleSpawnAtLiveSiteRejected) {
  World world(8);
  const auto site = world.add_site();
  world.spawn<CollectingActor>(site);
  EXPECT_THROW(world.spawn<CollectingActor>(site), InvariantViolation);
}

TEST(World, StableStoreSurvivesCrash) {
  World world(9);
  const auto site = world.add_site();
  world.spawn<CollectingActor>(site);
  world.store(site).put("epoch", to_bytes("42"));
  world.crash_site(site);
  world.spawn<CollectingActor>(site);
  const auto value = world.store(site).get("epoch");
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(to_string(*value), "42");
}

class TimerActor : public Actor {
 public:
  void on_start() override {
    set_timer(100, [this]() { fired = true; });
  }
  void on_message(ProcessId, const Bytes&) override {}
  bool fired = false;
};

TEST(World, TimersSilencedByCrash) {
  World world(10);
  const auto site = world.add_site();
  auto& actor = world.spawn<TimerActor>(site);
  world.run_for(50);
  world.crash_site(site);
  world.run_until_idle();
  EXPECT_FALSE(actor.fired);
}

TEST(StableStore, PutGetEraseAndCounters) {
  StableStore store;
  EXPECT_FALSE(store.get("k").has_value());
  store.put("k", to_bytes("v1"));
  store.put("k", to_bytes("v2"));
  EXPECT_EQ(to_string(*store.get("k")), "v2");
  EXPECT_EQ(store.writes(), 2u);
  EXPECT_TRUE(store.contains("k"));
  store.erase("k");
  EXPECT_FALSE(store.contains("k"));
}

TEST(FaultPlan, ScriptedCrashAndRecovery) {
  World world(11);
  const auto site = world.add_site();
  world.set_default_spawner(
      [](World& w, SiteId s) { w.spawn<CollectingActor>(s); });
  world.spawn<CollectingActor>(site);

  FaultPlan plan;
  plan.crash_at(1000, site).recover_at(2000, site);
  plan.arm(world);

  world.run_for(1500);
  EXPECT_FALSE(world.site_alive(site));
  world.run_for(1000);
  EXPECT_TRUE(world.site_alive(site));
}

TEST(FaultPlan, RandomPlanIsDeterministicForSeed) {
  Rng rng1(77);
  Rng rng2(77);
  std::vector<SiteId> sites{SiteId{0}, SiteId{1}, SiteId{2}, SiteId{3}};
  const auto plan1 = random_fault_plan(rng1, sites, 10 * kSecond);
  const auto plan2 = random_fault_plan(rng2, sites, 10 * kSecond);
  EXPECT_EQ(plan1.size(), plan2.size());
  EXPECT_GT(plan1.size(), 0u);
}

}  // namespace
}  // namespace evs::sim
