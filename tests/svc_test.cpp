// Client front door tests: the svc wire protocol (round trips and
// rejection of malformed bodies), the SvcServer's admission control and
// exactly-one-typed-response promise over real loopback sockets on its
// own epoll loop, and the view-epoch fencing rule end-to-end through
// simulated group objects (MergeableKv, LockManager, ReplicatedFile).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/event_loop.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "objects/lock_manager.hpp"
#include "objects/mergeable_kv.hpp"
#include "objects/replicated_file.hpp"
#include "support/object_cluster.hpp"
#include "svc/protocol.hpp"
#include "svc/server.hpp"

namespace evs::test {
namespace {

using runtime::SvcOp;
using runtime::SvcRequest;
using runtime::SvcRespondFn;
using runtime::SvcResponse;
using runtime::SvcStatus;

// ------------------------------------------------------------- protocol ---

SvcRequest make_request(SvcOp op, std::uint64_t epoch, std::string key = {},
                        std::string value = {}) {
  SvcRequest req;
  req.op = op;
  req.view_epoch = epoch;
  req.key = std::move(key);
  req.value = std::move(value);
  return req;
}

TEST(SvcProtocol, RequestRoundTripsEveryOp) {
  const SvcRequest cases[] = {
      make_request(SvcOp::Get, 7, "a-key"),
      make_request(SvcOp::Put, 0, "k", std::string(300, 'v')),
      make_request(SvcOp::Lock, 12),
      make_request(SvcOp::Unlock, 12),
      make_request(SvcOp::Append, 3, "", "tail"),
      make_request(SvcOp::LogAppend, 0, "routing-key", "record"),
      make_request(SvcOp::LogRead, 2, "17"),
      make_request(SvcOp::LogTail, 0),
      make_request(SvcOp::LogSeal, 9, "5"),
      make_request(SvcOp::LogTrim, 0, "8"),
      make_request(SvcOp::LogFill, 0, "21"),
  };
  std::uint64_t id = 100;
  for (SvcRequest req : cases) {
    // The group field rides on every op (multi-group hosts demux by it).
    req.group = GroupId{static_cast<std::uint32_t>(id % 3)};
    const svc::WireRequest back =
        svc::decode_request(svc::encode_request(++id, req));
    EXPECT_EQ(back.request_id, id);
    EXPECT_EQ(back.req.op, req.op);
    EXPECT_EQ(back.req.group, req.group);
    EXPECT_EQ(back.req.view_epoch, req.view_epoch);
    EXPECT_EQ(back.req.key, req.key);
    EXPECT_EQ(back.req.value, req.value);
  }
}

TEST(SvcProtocol, ResponseRoundTripsEveryStatus) {
  const SvcResponse cases[] = {
      SvcResponse::ok(42, "payload"),     SvcResponse::ok(1),
      SvcResponse::conflict(250),         SvcResponse::invalid_epoch(43),
      SvcResponse::unavailable(50),       SvcResponse::unsupported(),
      SvcResponse::not_leader(3, 44),
  };
  std::uint64_t id = 7;
  for (const SvcResponse& resp : cases) {
    const svc::WireResponse back =
        svc::decode_response(svc::encode_response(++id, resp));
    EXPECT_EQ(back.request_id, id);
    EXPECT_EQ(back.resp.status, resp.status);
    EXPECT_EQ(back.resp.value, resp.value);
    EXPECT_EQ(back.resp.view_epoch, resp.view_epoch);
    EXPECT_EQ(back.resp.retry_after_ms, resp.retry_after_ms);
    EXPECT_EQ(back.resp.coordinator_site, resp.coordinator_site);
  }
}

TEST(SvcProtocol, RejectsBadTagsAndTrailingBytes) {
  // Unknown op tag.
  Bytes req = svc::encode_request(1, make_request(SvcOp::Get, 0, "k"));
  req[8] = 0x77;  // op byte follows the u64 request_id
  EXPECT_THROW(svc::decode_request(req), DecodeError);
  // Unknown status tag.
  Bytes resp = svc::encode_response(1, SvcResponse::ok(1));
  resp[8] = 0x00;
  EXPECT_THROW(svc::decode_response(resp), DecodeError);
  // Trailing bytes after a complete body.
  req = svc::encode_request(1, make_request(SvcOp::Lock, 0));
  req.push_back(0);
  EXPECT_THROW(svc::decode_request(req), DecodeError);
  resp = svc::encode_response(1, SvcResponse::unsupported());
  resp.push_back(9);
  EXPECT_THROW(svc::decode_response(resp), DecodeError);
}

TEST(SvcProtocol, FramingExtractsAndRejects) {
  std::string buf;
  const Bytes a = svc::encode_request(1, make_request(SvcOp::Get, 0, "x"));
  const Bytes b = svc::encode_request(2, make_request(SvcOp::Lock, 5));
  svc::append_frame(buf, a);
  svc::append_frame(buf, b);

  std::size_t offset = 0;
  Bytes body;
  ASSERT_EQ(svc::next_frame(buf, offset, body), svc::FrameStatus::Frame);
  EXPECT_EQ(body, a);
  ASSERT_EQ(svc::next_frame(buf, offset, body), svc::FrameStatus::Frame);
  EXPECT_EQ(body, b);
  EXPECT_EQ(svc::next_frame(buf, offset, body), svc::FrameStatus::NeedMore);
  EXPECT_EQ(offset, buf.size());

  // Every strict prefix of one frame is NeedMore, never a bogus Frame.
  std::string one;
  svc::append_frame(one, a);
  for (std::size_t len = 0; len < one.size(); ++len) {
    std::size_t off = 0;
    EXPECT_EQ(svc::next_frame(one.substr(0, len), off, body),
              svc::FrameStatus::NeedMore);
  }

  // Zero and over-cap lengths are Malformed, not a wait-for-more stall.
  std::string evil(4, '\0');  // length prefix 0
  std::size_t off = 0;
  EXPECT_EQ(svc::next_frame(evil, off, body), svc::FrameStatus::Malformed);
  std::string huge;
  svc::append_frame(huge, Bytes{1});
  huge[2] = '\x7f';  // length prefix far above kMaxFrameBytes
  off = 0;
  EXPECT_EQ(svc::next_frame(huge, off, body), svc::FrameStatus::Malformed);
}

// ------------------------------------------------------------ SvcServer ---

constexpr std::uint32_t kLoopbackIp = (127u << 24) | 1u;

/// A nonblocking loopback client speaking the svc framing.
class TestClient {
 public:
  explicit TestClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    EXPECT_EQ(
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    ::fcntl(fd_, F_SETFL, O_NONBLOCK);
  }
  ~TestClient() { close(); }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  void send_request(std::uint64_t id, const SvcRequest& req) {
    std::string frame;
    svc::append_frame(frame, svc::encode_request(id, req));
    send_raw(frame);
  }

  void send_raw(const std::string& bytes) { out_ += bytes; }

  /// Pumps the loop until `count` responses have arrived (or a deadline).
  bool pump_until(net::EventLoop& loop, std::size_t count,
                  int max_iterations = 2000) {
    for (int i = 0; i < max_iterations && responses.size() < count; ++i) {
      while (sent_ < out_.size()) {
        const ssize_t n = ::send(fd_, out_.data() + sent_,
                                 out_.size() - sent_, MSG_NOSIGNAL);
        if (n <= 0) break;
        sent_ += static_cast<std::size_t>(n);
      }
      loop.run_for(kMillisecond);
      char buf[4096];
      while (fd_ >= 0) {
        const ssize_t n = ::read(fd_, buf, sizeof(buf));
        if (n > 0) {
          in_.append(buf, static_cast<std::size_t>(n));
        } else {
          if (n == 0) closed_by_server = true;
          break;
        }
      }
      std::size_t offset = 0;
      Bytes body;
      while (svc::next_frame(in_, offset, body) == svc::FrameStatus::Frame)
        responses.push_back(svc::decode_response(body));
      in_.erase(0, offset);
      if (closed_by_server) break;
    }
    return responses.size() >= count;
  }

  const SvcResponse* response_for(std::uint64_t id) const {
    for (const svc::WireResponse& r : responses) {
      if (r.request_id == id) return &r.resp;
    }
    return nullptr;
  }

  std::vector<svc::WireResponse> responses;
  bool closed_by_server = false;

 private:
  int fd_ = -1;
  std::string in_;
  std::string out_;
  std::size_t sent_ = 0;
};

TEST(SvcServer, PipelinedRequestsCompleteAndMatchByRequestId) {
  net::EventLoop loop;
  svc::SvcServer server(loop, kLoopbackIp, 0);
  ASSERT_NE(server.bound_port(), 0);
  server.set_handler([](SvcRequest req, SvcRespondFn respond) {
    respond(SvcResponse::ok(req.view_epoch, req.key + "=" + req.value));
  });

  TestClient client(server.bound_port());
  client.send_request(11, make_request(SvcOp::Put, 3, "a", "1"));
  client.send_request(12, make_request(SvcOp::Put, 3, "b", "2"));
  client.send_request(13, make_request(SvcOp::Get, 3, "c"));
  ASSERT_TRUE(client.pump_until(loop, 3));
  ASSERT_NE(client.response_for(12), nullptr);
  EXPECT_EQ(client.response_for(12)->value, "b=2");
  EXPECT_EQ(client.response_for(13)->value, "c=");
  EXPECT_EQ(server.stats().requests_ok, 3u);
  EXPECT_EQ(server.stats().connections_accepted, 1u);
}

TEST(SvcServer, DeferredCompletionStillDelivers) {
  net::EventLoop loop;
  svc::SvcServer server(loop, kLoopbackIp, 0);
  std::vector<SvcRespondFn> held;
  server.set_handler([&held](SvcRequest, SvcRespondFn respond) {
    held.push_back(std::move(respond));
  });

  TestClient client(server.bound_port());
  client.send_request(1, make_request(SvcOp::Get, 0, "k"));
  EXPECT_FALSE(client.pump_until(loop, 1, 20));
  ASSERT_EQ(held.size(), 1u);
  EXPECT_EQ(server.pending(), 1u);
  held[0](SvcResponse::ok(9, "later"));
  ASSERT_TRUE(client.pump_until(loop, 1));
  EXPECT_EQ(client.responses[0].resp.value, "later");
  EXPECT_EQ(server.pending(), 0u);
}

TEST(SvcServer, PerConnectionInflightCapShedsWithRetryAfter) {
  net::EventLoop loop;
  svc::SvcServerConfig config;
  config.max_inflight_per_conn = 2;
  config.shed_retry_after_ms = 77;
  svc::SvcServer server(loop, kLoopbackIp, 0, config);
  std::vector<SvcRespondFn> held;
  server.set_handler([&held](SvcRequest, SvcRespondFn respond) {
    held.push_back(std::move(respond));
  });

  TestClient client(server.bound_port());
  for (std::uint64_t id = 1; id <= 3; ++id)
    client.send_request(id, make_request(SvcOp::Get, 0, "k"));
  // Only the shed response arrives; the two admitted ones are held.
  ASSERT_TRUE(client.pump_until(loop, 1));
  const SvcResponse* shed = client.response_for(3);
  ASSERT_NE(shed, nullptr);
  EXPECT_EQ(shed->status, SvcStatus::Unavailable);
  EXPECT_EQ(shed->retry_after_ms, 77u);
  EXPECT_EQ(server.stats().requests_shed, 1u);
  // The admitted requests still complete normally afterwards.
  for (SvcRespondFn& respond : held) respond(SvcResponse::ok(1));
  ASSERT_TRUE(client.pump_until(loop, 3));
  EXPECT_EQ(server.stats().requests_ok, 2u);
}

TEST(SvcServer, GlobalPendingCapShedsAcrossConnections) {
  net::EventLoop loop;
  svc::SvcServerConfig config;
  config.max_pending = 1;
  svc::SvcServer server(loop, kLoopbackIp, 0, config);
  std::vector<SvcRespondFn> held;
  server.set_handler([&held](SvcRequest, SvcRespondFn respond) {
    held.push_back(std::move(respond));
  });

  TestClient first(server.bound_port());
  TestClient second(server.bound_port());
  first.send_request(1, make_request(SvcOp::Get, 0, "k"));
  EXPECT_FALSE(first.pump_until(loop, 1, 20));  // admitted and held
  second.send_request(2, make_request(SvcOp::Get, 0, "k"));
  ASSERT_TRUE(second.pump_until(loop, 1));
  EXPECT_EQ(second.responses[0].resp.status, SvcStatus::Unavailable);
  EXPECT_EQ(server.stats().requests_shed, 1u);
  ASSERT_EQ(held.size(), 1u);
  held[0](SvcResponse::ok(1));
  ASSERT_TRUE(first.pump_until(loop, 1));
}

TEST(SvcServer, RequestTimeoutAnswersUnavailableAndDropsLateCompletion) {
  net::EventLoop loop;
  svc::SvcServerConfig config;
  config.request_timeout = 20 * kMillisecond;
  svc::SvcServer server(loop, kLoopbackIp, 0, config);
  std::vector<SvcRespondFn> held;
  server.set_handler([&held](SvcRequest, SvcRespondFn respond) {
    held.push_back(std::move(respond));
  });

  TestClient client(server.bound_port());
  client.send_request(5, make_request(SvcOp::Get, 0, "k"));
  ASSERT_TRUE(client.pump_until(loop, 1));
  EXPECT_EQ(client.responses[0].resp.status, SvcStatus::Unavailable);
  EXPECT_EQ(server.stats().requests_timed_out, 1u);
  EXPECT_EQ(server.pending(), 0u);
  // The node answering after the deadline must be a silent no-op.
  ASSERT_EQ(held.size(), 1u);
  held[0](SvcResponse::ok(1, "too late"));
  loop.run_for(5 * kMillisecond);
  EXPECT_EQ(client.responses.size(), 1u);
  EXPECT_EQ(server.stats().requests_ok, 0u);
}

TEST(SvcServer, CompletionAfterDisconnectIsOrphaned) {
  net::EventLoop loop;
  svc::SvcServer server(loop, kLoopbackIp, 0);
  std::vector<SvcRespondFn> held;
  server.set_handler([&held](SvcRequest, SvcRespondFn respond) {
    held.push_back(std::move(respond));
  });

  TestClient client(server.bound_port());
  client.send_request(1, make_request(SvcOp::Get, 0, "k"));
  EXPECT_FALSE(client.pump_until(loop, 1, 20));
  ASSERT_EQ(held.size(), 1u);
  client.close();
  loop.run_for(10 * kMillisecond);  // server notices the hangup
  EXPECT_EQ(server.connections(), 0u);
  held[0](SvcResponse::ok(1));
  EXPECT_EQ(server.stats().responses_orphaned, 1u);
  EXPECT_EQ(server.pending(), 0u);
}

TEST(SvcServer, MalformedFramesDropTheConnection) {
  net::EventLoop loop;
  svc::SvcServer server(loop, kLoopbackIp, 0);
  server.set_handler([](SvcRequest, SvcRespondFn respond) {
    respond(SvcResponse::ok(1));
  });

  {
    // Zero-length frame prefix.
    TestClient client(server.bound_port());
    client.send_raw(std::string(4, '\0'));
    client.pump_until(loop, 1, 50);
    EXPECT_TRUE(client.closed_by_server);
  }
  {
    // Valid framing, undecodable body (bad op tag).
    TestClient client(server.bound_port());
    Bytes body = svc::encode_request(1, make_request(SvcOp::Get, 0, "k"));
    body[8] = 0x66;
    std::string frame;
    svc::append_frame(frame, body);
    client.send_raw(frame);
    client.pump_until(loop, 1, 50);
    EXPECT_TRUE(client.closed_by_server);
  }
  EXPECT_EQ(server.stats().dropped_malformed, 2u);
  EXPECT_EQ(server.connections(), 0u);
}

TEST(SvcServer, ConnectionCapShedsExtraAccepts) {
  net::EventLoop loop;
  svc::SvcServerConfig config;
  config.max_connections = 1;
  svc::SvcServer server(loop, kLoopbackIp, 0, config);
  server.set_handler([](SvcRequest, SvcRespondFn respond) {
    respond(SvcResponse::ok(1));
  });

  TestClient keeper(server.bound_port());
  keeper.send_request(1, make_request(SvcOp::Get, 0, "k"));
  ASSERT_TRUE(keeper.pump_until(loop, 1));

  TestClient extra(server.bound_port());
  extra.send_request(2, make_request(SvcOp::Get, 0, "k"));
  extra.pump_until(loop, 1, 50);
  EXPECT_TRUE(extra.closed_by_server);
  EXPECT_TRUE(extra.responses.empty());
  EXPECT_EQ(server.stats().connections_shed, 1u);

  // The admitted connection is unaffected.
  keeper.send_request(3, make_request(SvcOp::Get, 0, "k"));
  ASSERT_TRUE(keeper.pump_until(loop, 2));
}

TEST(SvcServer, NoHandlerShedsInsteadOfHanging) {
  net::EventLoop loop;
  svc::SvcServer server(loop, kLoopbackIp, 0);
  TestClient client(server.bound_port());
  client.send_request(1, make_request(SvcOp::Get, 0, "k"));
  ASSERT_TRUE(client.pump_until(loop, 1));
  EXPECT_EQ(client.responses[0].resp.status, SvcStatus::Unavailable);
  EXPECT_EQ(server.stats().requests_shed, 1u);
}

TEST(SvcServer, ExportsCountersAndLatencyHistogram) {
  net::EventLoop loop;
  svc::SvcServer server(loop, kLoopbackIp, 0);
  server.set_handler([](SvcRequest, SvcRespondFn respond) {
    respond(SvcResponse::ok(1));
  });
  TestClient client(server.bound_port());
  client.send_request(1, make_request(SvcOp::Get, 0, "k"));
  ASSERT_TRUE(client.pump_until(loop, 1));

  obs::MetricsRegistry registry;
  server.export_metrics(registry);
  const std::string json = registry.to_json();
  EXPECT_NE(json.find("\"svc.requests_ok\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("svc.latency_us"), std::string::npos) << json;
  EXPECT_NE(json.find("\"svc.connections\":1"), std::string::npos) << json;
}

// ----------------------------------------------- group objects + fencing ---

app::GroupObjectConfig plain_config(const std::vector<SiteId>& universe) {
  app::GroupObjectConfig cfg;
  cfg.endpoint.universe = universe;
  return cfg;
}

/// Issues one svc_request against a sim-hosted object, capturing the
/// (possibly deferred) typed response.
struct Capture {
  std::optional<SvcResponse> response;
  SvcRespondFn fn() {
    return [this](SvcResponse r) {
      ASSERT_FALSE(response.has_value()) << "second response for one request";
      response = std::move(r);
    };
  }
};

TEST(SvcObjects, KvGetPutRoundTripThroughTheGroup) {
  ObjectCluster<objects::MergeableKv, app::GroupObjectConfig> c(
      3, 11, [](const auto& u) { return plain_config(u); });
  ASSERT_TRUE(c.await_all_normal(c.all_indices()));

  Capture get0;
  c.obj(0).svc_request(make_request(SvcOp::Get, 0, "greeting"), get0.fn());
  ASSERT_TRUE(get0.response.has_value());  // reads answer synchronously
  EXPECT_EQ(get0.response->status, SvcStatus::Ok);
  EXPECT_EQ(get0.response->value, "");  // absent key reads empty
  const std::uint64_t epoch = get0.response->view_epoch;
  EXPECT_GT(epoch, 0u);

  Capture put;
  c.obj(0).svc_request(make_request(SvcOp::Put, epoch, "greeting", "hello"),
                       put.fn());
  ASSERT_TRUE(c.await([&]() { return put.response.has_value(); }));
  EXPECT_EQ(put.response->status, SvcStatus::Ok);
  EXPECT_EQ(put.response->view_epoch, epoch);

  // The write is ordered group-wide: another member serves it.
  ASSERT_TRUE(c.await([&]() {
    return c.obj(2).get("greeting").value_or("") == "hello";
  }));
  Capture get2;
  c.obj(2).svc_request(make_request(SvcOp::Get, epoch, "greeting"), get2.fn());
  ASSERT_TRUE(get2.response.has_value());
  EXPECT_EQ(get2.response->value, "hello");
}

TEST(SvcObjects, StaleEpochIsRejectedWithCurrentEpoch) {
  ObjectCluster<objects::MergeableKv, app::GroupObjectConfig> c(
      3, 12, [](const auto& u) { return plain_config(u); });
  ASSERT_TRUE(c.await_all_normal(c.all_indices()));
  const std::uint64_t epoch = c.obj(0).view_epoch();

  Capture stale;
  c.obj(0).svc_request(
      make_request(SvcOp::Put, epoch + 7, "k", "v"), stale.fn());
  ASSERT_TRUE(stale.response.has_value());
  EXPECT_EQ(stale.response->status, SvcStatus::InvalidEpoch);
  EXPECT_EQ(stale.response->view_epoch, epoch);
  // The rejected write never entered the total order.
  EXPECT_FALSE(c.obj(0).get("k").has_value());
}

TEST(SvcObjects, InFlightPutIsFencedAcrossViewChange) {
  ObjectCluster<objects::MergeableKv, app::GroupObjectConfig> c(
      3, 13, [](const auto& u) { return plain_config(u); });
  ASSERT_TRUE(c.await_all_normal(c.all_indices()));

  // View synchrony delivers every message in the view it was sent in: even
  // across a partition a member's own forward self-loopbacks and is drained
  // in the dying view, completing with Ok under the old epoch. The only way
  // an op stays in flight across a view change is to submit it while the
  // endpoint is *blocked* for the flush — then it rides app_queue_ into the
  // next view and the fence answers before the re-send delivers. Cut the
  // sequencer (p0) off alone: the survivors' round coordinator blocks while
  // waiting for its peer's ack over the network, an observable window (a
  // lone member acks its own propose in a single event and never shows it).
  const std::size_t victim = 1;
  const std::uint64_t epoch = c.obj(victim).view_epoch();

  c.world().network().set_partition({{c.site(0)}, {c.site(1), c.site(2)}});
  ASSERT_TRUE(c.await([&]() { return c.obj(victim).blocked(); },
                      120 * kSecond, kMillisecond / 4));
  ASSERT_EQ(c.obj(victim).view_epoch(), epoch);  // new view not yet installed

  Capture put;
  c.obj(victim).svc_request(make_request(SvcOp::Put, epoch, "fenced", "value"),
                            put.fn());
  EXPECT_FALSE(put.response.has_value());  // genuinely in flight

  // The view change fences the response with the *new* epoch...
  ASSERT_TRUE(c.await([&]() { return put.response.has_value(); }));
  EXPECT_EQ(put.response->status, SvcStatus::InvalidEpoch);
  EXPECT_GT(put.response->view_epoch, epoch);
  EXPECT_EQ(put.response->view_epoch, c.obj(victim).view_epoch());

  // ...but the queued multicast still delivers in the next view: only the
  // response was fenced, the operation itself is not lost.
  ASSERT_TRUE(c.await([&]() {
    return c.obj(victim).get("fenced").value_or("") == "value";
  }));
}

TEST(SvcObjects, TracedRequestAttributesPhaseLatencies) {
  ObjectCluster<objects::MergeableKv, app::GroupObjectConfig> c(
      3, 16, [](const auto& u) { return plain_config(u); });
  c.world().trace_bus().set_enabled(true);
  ASSERT_TRUE(c.await_all_normal(c.all_indices()));
  const std::size_t victim = 1;
  const std::uint64_t epoch = c.obj(victim).view_epoch();

  // Happy path: a sampled Put runs order -> deliver -> apply, so the order
  // and apply histograms populate and RequestOrdered/Applied land on the
  // bus under the request's trace id; the fence histogram stays empty.
  SvcRequest traced = make_request(SvcOp::Put, epoch, "k", "v");
  traced.trace_id = 0x0badc0ffee0ddf00ull;
  traced.sampled = true;
  Capture put;
  c.obj(victim).svc_request(traced, put.fn());
  ASSERT_TRUE(c.await([&]() { return put.response.has_value(); }));
  EXPECT_EQ(put.response->status, SvcStatus::Ok);
  EXPECT_GE(c.obj(victim).order_latency().count(), 1u);
  EXPECT_GE(c.obj(victim).apply_latency().count(), 1u);
  EXPECT_EQ(c.obj(victim).fence_latency().count(), 0u);
  bool saw_ordered = false, saw_applied = false;
  for (const obs::TraceEvent& e : c.world().trace_bus().events()) {
    if (e.seq != traced.trace_id) continue;
    saw_ordered |= e.kind == obs::EventKind::RequestOrdered;
    saw_applied |= e.kind == obs::EventKind::RequestApplied;
  }
  EXPECT_TRUE(saw_ordered);
  EXPECT_TRUE(saw_applied);

  // Fence path: same blocked-endpoint window as InFlightPutIsFenced...
  // above, but with a sampled request — the view-change fence must
  // attribute the wait to the fence histogram and emit RequestFenced.
  c.world().network().set_partition({{c.site(0)}, {c.site(1), c.site(2)}});
  ASSERT_TRUE(c.await([&]() { return c.obj(victim).blocked(); },
                      120 * kSecond, kMillisecond / 4));
  ASSERT_EQ(c.obj(victim).view_epoch(), epoch);

  SvcRequest fenced = make_request(SvcOp::Put, epoch, "fenced", "value");
  fenced.trace_id = 0x7ace7ace7ace7aceull;
  fenced.sampled = true;
  Capture blocked_put;
  c.obj(victim).svc_request(fenced, blocked_put.fn());
  EXPECT_FALSE(blocked_put.response.has_value());  // genuinely in flight

  ASSERT_TRUE(c.await([&]() { return blocked_put.response.has_value(); }));
  EXPECT_EQ(blocked_put.response->status, SvcStatus::InvalidEpoch);
  EXPECT_GT(blocked_put.response->view_epoch, epoch);
  EXPECT_GE(c.obj(victim).fence_latency().count(), 1u);
  bool saw_fenced = false;
  for (const obs::TraceEvent& e : c.world().trace_bus().events()) {
    saw_fenced |= e.seq == fenced.trace_id &&
                  e.kind == obs::EventKind::RequestFenced;
  }
  EXPECT_TRUE(saw_fenced);
}

TEST(SvcObjects, LockConflictCarriesLeaseRetryHint) {
  ObjectCluster<objects::LockManager, app::GroupObjectConfig> c(
      3, 14, [](const auto& u) { return plain_config(u); });
  ASSERT_TRUE(c.await_all_normal(c.all_indices()));

  Capture lock0;
  c.obj(0).svc_request(make_request(SvcOp::Lock, 0), lock0.fn());
  ASSERT_TRUE(c.await([&]() { return lock0.response.has_value(); }));
  EXPECT_EQ(lock0.response->status, SvcStatus::Ok);
  EXPECT_EQ(lock0.response->value, to_string(c.obj(0).id()));
  ASSERT_TRUE(c.await([&]() { return c.obj(1).holder().has_value(); }));

  // A competing client through another member: Conflict with the
  // remaining lease as its retry hint.
  Capture lock1;
  c.obj(1).svc_request(make_request(SvcOp::Lock, 0), lock1.fn());
  ASSERT_TRUE(c.await([&]() { return lock1.response.has_value(); }));
  EXPECT_EQ(lock1.response->status, SvcStatus::Conflict);
  EXPECT_GT(lock1.response->retry_after_ms, 0u);

  // Get reports the holder; Unlock by the holder frees it.
  Capture who;
  c.obj(2).svc_request(make_request(SvcOp::Get, 0), who.fn());
  ASSERT_TRUE(who.response.has_value());
  EXPECT_EQ(who.response->value, to_string(c.obj(0).id()));

  Capture unlock;
  c.obj(0).svc_request(make_request(SvcOp::Unlock, 0), unlock.fn());
  ASSERT_TRUE(c.await([&]() { return unlock.response.has_value(); }));
  EXPECT_EQ(unlock.response->status, SvcStatus::Ok);
  ASSERT_TRUE(c.await([&]() { return !c.obj(2).holder().has_value(); }));
}

objects::ReplicatedFileConfig file_config(const std::vector<SiteId>& u) {
  objects::ReplicatedFileConfig cfg;
  cfg.object.endpoint.universe = u;
  return cfg;
}

TEST(SvcObjects, FileServesPutAppendAndMinorityUnavailable) {
  ObjectCluster<objects::ReplicatedFile, objects::ReplicatedFileConfig> c(
      3, 15, [](const auto& u) { return file_config(u); });
  ASSERT_TRUE(c.await_all_normal(c.all_indices()));

  Capture put;
  c.obj(0).svc_request(make_request(SvcOp::Put, 0, "", "hello"), put.fn());
  ASSERT_TRUE(c.await([&]() { return put.response.has_value(); }));
  EXPECT_EQ(put.response->status, SvcStatus::Ok);

  Capture append;
  c.obj(1).svc_request(make_request(SvcOp::Append, 0, "", " world"),
                       append.fn());
  ASSERT_TRUE(c.await([&]() { return append.response.has_value(); }));
  EXPECT_EQ(append.response->status, SvcStatus::Ok);
  ASSERT_TRUE(c.await([&]() { return c.obj(2).content() == "hello world"; }));

  // Unsupported op against this object type.
  Capture lock;
  c.obj(0).svc_request(make_request(SvcOp::Lock, 0), lock.fn());
  ASSERT_TRUE(lock.response.has_value());
  EXPECT_EQ(lock.response->status, SvcStatus::Unsupported);

  // Quorum loss: the minority member keeps serving reads but answers
  // writes Unavailable{retry} — typed, never a hang.
  c.world().network().set_partition({{c.site(2)}, {c.site(0), c.site(1)}});
  ASSERT_TRUE(c.await([&]() {
    return c.obj(2).view().size() == 1 && !c.obj(2).blocked();
  }));
  Capture read;
  c.obj(2).svc_request(make_request(SvcOp::Get, 0), read.fn());
  ASSERT_TRUE(read.response.has_value());
  EXPECT_EQ(read.response->status, SvcStatus::Ok);
  EXPECT_EQ(read.response->value, "hello world");  // stale reads allowed
  Capture write;
  c.obj(2).svc_request(make_request(SvcOp::Put, 0, "", "minority"),
                       write.fn());
  ASSERT_TRUE(write.response.has_value());
  EXPECT_EQ(write.response->status, SvcStatus::Unavailable);
  EXPECT_GT(write.response->retry_after_ms, 0u);
}

}  // namespace
}  // namespace evs::test
