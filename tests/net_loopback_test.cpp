// End-to-end loopback test: three real evs_node processes on 127.0.0.1.
//
//   usage: net_loopback_test <path-to-evs_node> <path-to-trace_check>
//                            <path-to-evs_top> <path-to-evs_ctl>
//
// The scenario the ISSUE prescribes, driven over the nodes' stdout:
//   1. spawn three evs_node processes from generated configs (each with
//      a per-node admin endpoint and a shared admin_token),
//   2. wait until every node installs the common 3-view,
//   3. wait until every node delivers all 300 multicasts (100 per node),
//   3b. scrape GET /status and /metrics from all three live admin
//       endpoints — identical view ids, live transport counters, parsing
//       Prometheus exposition — and run evs_top --once --expect-converged,
//   3c. partition-and-heal over the control plane: SIGSTOP one node until
//       the survivors install the 2-view, SIGCONT it and wait for the
//       3-view to come back in *split* mode (the structure does not grow
//       by itself — the paper's asymmetry), check a wrong-token POST is
//       refused, then drive evs_ctl --all merge-all (retrying: a node
//       blocked mid-view-change drops merge requests by design) until
//       every node reports the merged e-view in normal mode,
//   4. SIGKILL one member; the survivors must install the 2-view,
//   5. SIGTERM the survivors and check their clean exit,
//   6. replay the union of the trace dumps through trace_check --merge:
//      zero P2.1-P2.3 violations, plus the cross-process span correlation
//      (written into $EVS_LOOPBACK_ARTIFACTS when set, for CI upload).
//
// The victim's trace survives its SIGKILL because the nodes run with
// --trace-flush-ms; we only kill after the workload is quiescent, so the
// last flush already covers every multicast the survivors delivered.
//
// Plain main() runner (no gtest): exit 0 on success, 1 on failure with a
// narrated transcript on stderr. Registered RUN_SERIAL in ctest since it
// binds fixed-for-the-run loopback ports and forks real processes.
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iterator>
#include <string>
#include <vector>

namespace {

constexpr int kNodes = 3;

[[noreturn]] void die(const std::string& message) {
  std::fprintf(stderr, "FAIL: %s\n", message.c_str());
  std::exit(1);
}

std::uint16_t free_port() {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) die("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    die("bind() failed");
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    die("getsockname() failed");
  const std::uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

struct Child {
  pid_t pid = -1;
  int out_fd = -1;
  std::string out;  // everything the node printed so far
  bool exited = false;
  int exit_status = -1;
};

Child spawn_node(const std::string& binary, const std::string& config_path,
                 const std::string& trace_dir) {
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) die("pipe() failed");
  const pid_t pid = ::fork();
  if (pid < 0) die("fork() failed");
  if (pid == 0) {
    ::dup2(pipe_fds[1], STDOUT_FILENO);
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    ::setenv("EVS_TRACE_OUT", trace_dir.c_str(), 1);
    ::execl(binary.c_str(), binary.c_str(), "--config", config_path.c_str(),
            "--multicast", "100", "--send-interval-ms", "5",
            "--trace-flush-ms", "100", "--merge-all",
            static_cast<char*>(nullptr));
    std::perror("execl");
    _exit(127);
  }
  ::close(pipe_fds[1]);
  ::fcntl(pipe_fds[0], F_SETFL, O_NONBLOCK);
  Child child;
  child.pid = pid;
  child.out_fd = pipe_fds[0];
  return child;
}

/// Reads whatever the children have printed; true if any data arrived.
bool drain(std::vector<Child>& children, int timeout_ms) {
  std::vector<pollfd> fds;
  for (Child& c : children)
    if (c.out_fd >= 0) fds.push_back({c.out_fd, POLLIN, 0});
  if (fds.empty()) return false;
  if (::poll(fds.data(), fds.size(), timeout_ms) <= 0) return false;
  bool got = false;
  for (Child& c : children) {
    if (c.out_fd < 0) continue;
    char buf[4096];
    for (;;) {
      const ssize_t n = ::read(c.out_fd, buf, sizeof(buf));
      if (n > 0) {
        c.out.append(buf, static_cast<std::size_t>(n));
        got = true;
      } else if (n == 0) {
        ::close(c.out_fd);
        c.out_fd = -1;
        break;
      } else {
        break;  // EAGAIN
      }
    }
  }
  return got;
}

/// Pumps child output until `pred()` holds or ~timeout_ms passes.
bool await(std::vector<Child>& children, int timeout_ms,
           const std::function<bool()>& pred) {
  for (int waited = 0; waited < timeout_ms;) {
    if (pred()) return true;
    drain(children, 50);
    waited += 50;
  }
  return pred();
}

bool contains_after(const std::string& text, std::size_t offset,
                    const std::string& needle) {
  return text.find(needle, offset) != std::string::npos;
}

/// Blocking loopback HTTP/1.0 GET with a receive timeout; returns the
/// whole response (headers + body) or "" on any failure.
std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  timeval tv{5, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  if (::send(fd, request.data(), request.size(), 0) !=
      static_cast<ssize_t>(request.size())) {
    ::close(fd);
    return {};
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0)
    response.append(buf, static_cast<std::size_t>(n));
  ::close(fd);
  return response;
}

/// Extracts the value of `"key":"..."` from a JSON body; "" if absent.
std::string json_field(const std::string& body, const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const std::size_t at = body.find(needle);
  if (at == std::string::npos) return {};
  const std::size_t start = at + needle.size();
  const std::size_t end = body.find('"', start);
  return end == std::string::npos ? std::string{}
                                  : body.substr(start, end - start);
}

int run_and_wait(const std::vector<std::string>& args) {
  const pid_t pid = ::fork();
  if (pid < 0) die("fork() failed");
  if (pid == 0) {
    std::vector<char*> argv;
    for (const std::string& a : args)
      argv.push_back(const_cast<char*>(a.c_str()));
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    std::perror("execv");
    _exit(127);
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

void reap(Child& child) {
  int status = 0;
  if (::waitpid(child.pid, &status, 0) == child.pid) {
    child.exited = true;
    child.exit_status = status;
  }
  while (child.out_fd >= 0) {
    char buf[4096];
    const ssize_t n = ::read(child.out_fd, buf, sizeof(buf));
    if (n > 0) {
      child.out.append(buf, static_cast<std::size_t>(n));
    } else {
      ::close(child.out_fd);
      child.out_fd = -1;
    }
  }
}

void dump_outputs(const std::vector<Child>& children) {
  for (int i = 0; i < static_cast<int>(children.size()); ++i)
    std::fprintf(stderr, "--- node%d output ---\n%s\n", i,
                 children[i].out.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 5) {
    std::fprintf(stderr,
                 "usage: %s <evs_node> <trace_check> <evs_top> <evs_ctl>\n",
                 argv[0]);
    return 2;
  }
  const std::string evs_node = argv[1];
  const std::string trace_check = argv[2];
  const std::string evs_top = argv[3];
  const std::string evs_ctl = argv[4];

  char dir_template[] = "/tmp/evs_loopback_XXXXXX";
  if (::mkdtemp(dir_template) == nullptr) die("mkdtemp() failed");
  const std::string dir = dir_template;

  std::uint16_t ports[kNodes];
  std::uint16_t admin_ports[kNodes];
  for (auto& p : ports) p = free_port();
  for (auto& p : admin_ports) p = free_port();

  std::vector<std::string> config_paths;
  for (int i = 0; i < kNodes; ++i) {
    const std::string path = dir + "/node" + std::to_string(i) + ".conf";
    std::ofstream os(path);
    os << "self " << i << "\n";
    for (int j = 0; j < kNodes; ++j)
      os << "peer " << j << " 127.0.0.1:" << ports[j] << "\n";
    for (int j = 0; j < kNodes; ++j)
      os << "admin " << j << " 127.0.0.1:" << admin_ports[j] << "\n";
    os << "admin_token looptoken\n";
    config_paths.push_back(path);
  }

  std::vector<Child> children;
  for (int i = 0; i < kNodes; ++i)
    children.push_back(spawn_node(evs_node, config_paths[i], dir));

  // 1. Every node installs the common full view {0,1,2}.
  const std::string full_view = "size=3 members=0,1,2";
  if (!await(children, 30000, [&]() {
        for (const Child& c : children)
          if (!contains_after(c.out, 0, full_view)) return false;
        return true;
      })) {
    dump_outputs(children);
    die("nodes never converged to the common 3-view");
  }
  std::fprintf(stderr, "ok: common 3-view at every node\n");

  // 2. All 300 multicasts (100 per node) delivered everywhere, in the
  //    full view — total order means n=300 appears exactly once per node.
  if (!await(children, 60000, [&]() {
        for (const Child& c : children)
          if (!contains_after(c.out, 0, "deliver n=300 ")) return false;
        return true;
      })) {
    dump_outputs(children);
    die("nodes never delivered all 300 multicasts");
  }
  std::fprintf(stderr, "ok: 300 deliveries at every node\n");

  // 3b. The live admin plane: every node's /status must report the same
  //     installed view, /metrics must expose live transport counters, and
  //     the Prometheus exposition must be well-formed.
  std::string common_view;
  for (int i = 0; i < kNodes; ++i) {
    const std::string status = http_get(admin_ports[i], "/status");
    if (status.find("HTTP/1.0 200") != 0)
      die("admin /status of node" + std::to_string(i) + " not served");
    const std::string view = json_field(status, "view");
    if (view.empty())
      die("admin /status of node" + std::to_string(i) + " has no view id");
    if (common_view.empty()) common_view = view;
    if (view != common_view)
      die("node" + std::to_string(i) + " /status view " + view +
          " != node0's " + common_view);
    if (json_field(status, "mode").empty())
      die("node" + std::to_string(i) + " /status has no mode");

    const std::string metrics = http_get(admin_ports[i], "/metrics");
    if (metrics.find("HTTP/1.0 200") != 0)
      die("admin /metrics of node" + std::to_string(i) + " not served");
    if (!contains_after(metrics, 0, "\"transport.datagrams_sent\":"))
      die("node" + std::to_string(i) + " /metrics lacks transport counters");
    if (!contains_after(metrics, 0, "\"transport.dropped_malformed\":"))
      die("node" + std::to_string(i) + " /metrics lacks drop counters");
    if (!contains_after(metrics, 0, "\"transport.syscalls.sendmsg_calls\":") ||
        !contains_after(metrics, 0, "\"transport.syscalls.recvmsg_calls\":"))
      die("node" + std::to_string(i) + " /metrics lacks syscall counters");
    if (!contains_after(metrics, 0, "\"transport.recv_errors\":"))
      die("node" + std::to_string(i) + " /metrics lacks recv_errors");
    if (!contains_after(metrics, 0, "\"transport.datagrams_coalesced\":") ||
        !contains_after(metrics, 0, "\"transport.frames_sent\":"))
      die("node" + std::to_string(i) + " /metrics lacks coalescing counters");
    if (!contains_after(metrics, 0, "\"node.app_delivered\":"))
      die("node" + std::to_string(i) + " /metrics lacks endpoint counters");

    const std::string prom = http_get(admin_ports[i], "/metrics.prom");
    if (prom.find("HTTP/1.0 200") != 0 ||
        !contains_after(prom, 0, "# TYPE transport_datagrams_sent counter"))
      die("node" + std::to_string(i) + " /metrics.prom malformed");
  }
  std::fprintf(stderr, "ok: admin /status agrees on view %s at every node\n",
               common_view.c_str());

  // ... and the fleet tool agrees the fleet is converged.
  if (run_and_wait({evs_top, "--config", config_paths[0], "--once",
                    "--expect-converged", "--timeout-ms", "5000"}) != 0)
    die("evs_top --once --expect-converged failed on a converged fleet");
  std::fprintf(stderr, "ok: evs_top sees a converged fleet\n");

  // 3c. Partition-and-heal, driven through the admin control plane.
  //
  // True iff every node serves /status with one common view id and the
  // given mode ("normal" = degenerate structure, "split" = the e-view
  // still carries partition-era subviews awaiting an application merge).
  const auto fleet_in_mode = [&](const char* want_mode) {
    std::string view0;
    for (int i = 0; i < kNodes; ++i) {
      const std::string status = http_get(admin_ports[i], "/status");
      const std::string view = json_field(status, "view");
      if (view.empty() || json_field(status, "mode") != want_mode)
        return false;
      if (i == 0)
        view0 = view;
      else if (view != view0)
        return false;
    }
    return true;
  };

  // SIGSTOP node 2: the survivors' detector drops it and they install the
  // 2-view. The stopped process keeps its sockets; nothing is torn down.
  const std::size_t stop_offset[2] = {children[0].out.size(),
                                      children[1].out.size()};
  ::kill(children[2].pid, SIGSTOP);
  const std::string survivor_pair = "size=2 members=0,1";
  if (!await(children, 60000, [&]() {
        return contains_after(children[0].out, stop_offset[0],
                              survivor_pair) &&
               contains_after(children[1].out, stop_offset[1], survivor_pair);
      })) {
    dump_outputs(children);
    die("survivors never installed the 2-view during the SIGSTOP partition");
  }
  std::fprintf(stderr, "ok: SIGSTOP partition: survivors in the 2-view\n");

  // SIGCONT: the view comes back to {0,1,2}, but the e-view structure must
  // NOT heal by itself — growth is application-controlled, so the fleet
  // reconverges in split mode, partition-era subviews intact.
  const std::size_t cont_offset[kNodes] = {children[0].out.size(),
                                           children[1].out.size(),
                                           children[2].out.size()};
  ::kill(children[2].pid, SIGCONT);
  if (!await(children, 60000, [&]() {
        for (int i = 0; i < kNodes; ++i)
          if (!contains_after(children[i].out, cont_offset[i], full_view))
            return false;
        return true;
      })) {
    dump_outputs(children);
    die("fleet never reconverged to the 3-view after SIGCONT");
  }
  bool split = false;
  for (int waited = 0; waited < 30000 && !split; waited += 250) {
    drain(children, 0);
    split = fleet_in_mode("split");
    if (!split) ::usleep(250 * 1000);
  }
  if (!split) {
    dump_outputs(children);
    die("healed fleet is not in split mode — structure merged on its own?");
  }
  std::fprintf(stderr, "ok: healed view is back, e-view still split\n");

  // The write side is token-guarded: a wrong token must be refused (401)
  // and counted, and must not merge anything.
  if (run_and_wait({evs_ctl, "--config", config_paths[0], "--site", "0",
                    "--token", "wrong", "--timeout-ms", "2000",
                    "merge-all"}) == 0)
    die("evs_ctl with a wrong token was accepted");
  {
    const std::string metrics = http_get(admin_ports[0], "/metrics");
    if (!contains_after(metrics, 0, "\"admin.dropped_unauthorized\":1"))
      die("unauthorized POST was not counted in admin.dropped_unauthorized");
  }
  std::fprintf(stderr, "ok: wrong-token merge-all refused and counted\n");

  // Now the real heal: POST /merge-all to every node (only the current
  // primary acts on it; the others forward). A node that is blocked
  // mid-view-change drops merge requests by design, so retry until every
  // node reports the merged, degenerate e-view.
  bool merged = false;
  for (int attempt = 0; attempt < 40 && !merged; ++attempt) {
    run_and_wait({evs_ctl, "--config", config_paths[0], "--all",
                  "--timeout-ms", "2000", "merge-all"});
    for (int i = 0; i < 4 && !merged; ++i) {
      drain(children, 100);
      merged = fleet_in_mode("normal");
      if (!merged) ::usleep(150 * 1000);
    }
  }
  if (!merged) {
    dump_outputs(children);
    die("fleet never merged back to normal mode after evs_ctl merge-all");
  }
  if (run_and_wait({evs_top, "--config", config_paths[0], "--once",
                    "--expect-converged", "--timeout-ms", "5000"}) != 0)
    die("evs_top does not see the healed fleet as converged");
  {
    // The accepted commands are visible on the admin plane's own counters.
    const std::string metrics = http_get(admin_ports[0], "/metrics");
    if (!contains_after(metrics, 0, "\"admin.commands_ok\":"))
      die("admin.commands_ok missing from /metrics after merge-all");
  }
  std::fprintf(stderr,
               "ok: evs_ctl merge-all healed the e-view at every node\n");

  // Let each node's periodic trace flush cover the now-quiescent run, so
  // the victim's dump includes every multicast it sent.
  ::usleep(500 * 1000);

  // 3. SIGKILL node 2; survivors must install the 2-view {0,1}.
  const std::size_t kill_offset[2] = {children[0].out.size(),
                                      children[1].out.size()};
  ::kill(children[2].pid, SIGKILL);
  reap(children[2]);
  const std::string survivor_view = "size=2 members=0,1";
  if (!await(children, 60000, [&]() {
        return contains_after(children[0].out, kill_offset[0],
                              survivor_view) &&
               contains_after(children[1].out, kill_offset[1], survivor_view);
      })) {
    dump_outputs(children);
    die("survivors never installed the 2-view after the kill");
  }
  std::fprintf(stderr, "ok: survivors installed the 2-view\n");

  // 4. Graceful shutdown of the survivors.
  ::kill(children[0].pid, SIGTERM);
  ::kill(children[1].pid, SIGTERM);
  reap(children[0]);
  reap(children[1]);
  for (int i = 0; i < 2; ++i) {
    if (!WIFEXITED(children[i].exit_status) ||
        WEXITSTATUS(children[i].exit_status) != 0) {
      dump_outputs(children);
      die("survivor node" + std::to_string(i) + " exited uncleanly");
    }
    if (!contains_after(children[i].out, 0, "summary ")) {
      dump_outputs(children);
      die("survivor node" + std::to_string(i) + " printed no summary");
    }
  }
  std::fprintf(stderr, "ok: survivors exited cleanly\n");

  // 5. The union of the three traces passes the view-synchrony checker,
  //    and the cross-process span correlation runs over the same union.
  //    EVS_LOOPBACK_ARTIFACTS=<dir> keeps the span JSON for CI upload.
  std::vector<std::string> traces;
  for (int i = 0; i < kNodes; ++i) {
    const std::string path =
        dir + "/evs_node-site" + std::to_string(i) + ".trace.jsonl";
    if (::access(path.c_str(), R_OK) != 0) die("missing trace: " + path);
    traces.push_back(path);
  }
  const char* artifacts_env = std::getenv("EVS_LOOPBACK_ARTIFACTS");
  const std::string artifacts = artifacts_env != nullptr ? artifacts_env : dir;
  const std::string spans_json = artifacts + "/loopback-spans.json";
  const std::string spans_chrome = artifacts + "/loopback-flows.json";
  if (run_and_wait({trace_check, "--merge", "--spans-json", spans_json,
                    "--spans-chrome", spans_chrome, traces[0], traces[1],
                    traces[2]}) != 0) {
    dump_outputs(children);
    die("trace_check found violations in the merged traces");
  }
  std::ifstream spans_in(spans_json);
  std::string spans_body((std::istreambuf_iterator<char>(spans_in)),
                         std::istreambuf_iterator<char>());
  if (!contains_after(spans_body, 0, "\"view_changes\":[{"))
    die("span correlation produced no view-change phase breakdown");
  std::fprintf(stderr, "ok: merged traces pass trace_check + span analysis\n");

  // Success: clean up the scratch directory.
  for (const std::string& path : traces) {
    const std::string stem = path.substr(0, path.size() - sizeof(".trace.jsonl") + 1);
    ::unlink((stem + ".trace.jsonl").c_str());
    ::unlink((stem + ".chrome.json").c_str());
    ::unlink((stem + ".metrics.json").c_str());
    ::unlink((stem + ".metrics.prom").c_str());
  }
  if (artifacts == dir) {
    ::unlink(spans_json.c_str());
    ::unlink(spans_chrome.c_str());
  }
  for (const std::string& path : config_paths) ::unlink(path.c_str());
  ::rmdir(dir.c_str());
  std::printf("PASS\n");
  return 0;
}
