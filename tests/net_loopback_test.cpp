// End-to-end loopback test: three real evs_node processes on 127.0.0.1.
//
//   usage: net_loopback_test <path-to-evs_node> <path-to-trace_check>
//
// The scenario the ISSUE prescribes, driven over the nodes' stdout:
//   1. spawn three evs_node processes from generated configs,
//   2. wait until every node installs the common 3-view,
//   3. wait until every node delivers all 300 multicasts (100 per node),
//   4. SIGKILL one member; the survivors must install the 2-view,
//   5. SIGTERM the survivors and check their clean exit,
//   6. replay the union of the trace dumps through trace_check --merge:
//      zero P2.1-P2.3 violations.
//
// The victim's trace survives its SIGKILL because the nodes run with
// --trace-flush-ms; we only kill after the workload is quiescent, so the
// last flush already covers every multicast the survivors delivered.
//
// Plain main() runner (no gtest): exit 0 on success, 1 on failure with a
// narrated transcript on stderr. Registered RUN_SERIAL in ctest since it
// binds fixed-for-the-run loopback ports and forks real processes.
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

namespace {

constexpr int kNodes = 3;

[[noreturn]] void die(const std::string& message) {
  std::fprintf(stderr, "FAIL: %s\n", message.c_str());
  std::exit(1);
}

std::uint16_t free_port() {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) die("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    die("bind() failed");
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    die("getsockname() failed");
  const std::uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

struct Child {
  pid_t pid = -1;
  int out_fd = -1;
  std::string out;  // everything the node printed so far
  bool exited = false;
  int exit_status = -1;
};

Child spawn_node(const std::string& binary, const std::string& config_path,
                 const std::string& trace_dir) {
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) die("pipe() failed");
  const pid_t pid = ::fork();
  if (pid < 0) die("fork() failed");
  if (pid == 0) {
    ::dup2(pipe_fds[1], STDOUT_FILENO);
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    ::setenv("EVS_TRACE_OUT", trace_dir.c_str(), 1);
    ::execl(binary.c_str(), binary.c_str(), "--config", config_path.c_str(),
            "--multicast", "100", "--send-interval-ms", "5",
            "--trace-flush-ms", "100", "--merge-all",
            static_cast<char*>(nullptr));
    std::perror("execl");
    _exit(127);
  }
  ::close(pipe_fds[1]);
  ::fcntl(pipe_fds[0], F_SETFL, O_NONBLOCK);
  Child child;
  child.pid = pid;
  child.out_fd = pipe_fds[0];
  return child;
}

/// Reads whatever the children have printed; true if any data arrived.
bool drain(std::vector<Child>& children, int timeout_ms) {
  std::vector<pollfd> fds;
  for (Child& c : children)
    if (c.out_fd >= 0) fds.push_back({c.out_fd, POLLIN, 0});
  if (fds.empty()) return false;
  if (::poll(fds.data(), fds.size(), timeout_ms) <= 0) return false;
  bool got = false;
  for (Child& c : children) {
    if (c.out_fd < 0) continue;
    char buf[4096];
    for (;;) {
      const ssize_t n = ::read(c.out_fd, buf, sizeof(buf));
      if (n > 0) {
        c.out.append(buf, static_cast<std::size_t>(n));
        got = true;
      } else if (n == 0) {
        ::close(c.out_fd);
        c.out_fd = -1;
        break;
      } else {
        break;  // EAGAIN
      }
    }
  }
  return got;
}

/// Pumps child output until `pred()` holds or ~timeout_ms passes.
bool await(std::vector<Child>& children, int timeout_ms,
           const std::function<bool()>& pred) {
  for (int waited = 0; waited < timeout_ms;) {
    if (pred()) return true;
    drain(children, 50);
    waited += 50;
  }
  return pred();
}

bool contains_after(const std::string& text, std::size_t offset,
                    const std::string& needle) {
  return text.find(needle, offset) != std::string::npos;
}

void reap(Child& child) {
  int status = 0;
  if (::waitpid(child.pid, &status, 0) == child.pid) {
    child.exited = true;
    child.exit_status = status;
  }
  while (child.out_fd >= 0) {
    char buf[4096];
    const ssize_t n = ::read(child.out_fd, buf, sizeof(buf));
    if (n > 0) {
      child.out.append(buf, static_cast<std::size_t>(n));
    } else {
      ::close(child.out_fd);
      child.out_fd = -1;
    }
  }
}

void dump_outputs(const std::vector<Child>& children) {
  for (int i = 0; i < static_cast<int>(children.size()); ++i)
    std::fprintf(stderr, "--- node%d output ---\n%s\n", i,
                 children[i].out.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: %s <evs_node> <trace_check>\n", argv[0]);
    return 2;
  }
  const std::string evs_node = argv[1];
  const std::string trace_check = argv[2];

  char dir_template[] = "/tmp/evs_loopback_XXXXXX";
  if (::mkdtemp(dir_template) == nullptr) die("mkdtemp() failed");
  const std::string dir = dir_template;

  std::uint16_t ports[kNodes];
  for (auto& p : ports) p = free_port();

  std::vector<std::string> config_paths;
  for (int i = 0; i < kNodes; ++i) {
    const std::string path = dir + "/node" + std::to_string(i) + ".conf";
    std::ofstream os(path);
    os << "self " << i << "\n";
    for (int j = 0; j < kNodes; ++j)
      os << "peer " << j << " 127.0.0.1:" << ports[j] << "\n";
    config_paths.push_back(path);
  }

  std::vector<Child> children;
  for (int i = 0; i < kNodes; ++i)
    children.push_back(spawn_node(evs_node, config_paths[i], dir));

  // 1. Every node installs the common full view {0,1,2}.
  const std::string full_view = "size=3 members=0,1,2";
  if (!await(children, 30000, [&]() {
        for (const Child& c : children)
          if (!contains_after(c.out, 0, full_view)) return false;
        return true;
      })) {
    dump_outputs(children);
    die("nodes never converged to the common 3-view");
  }
  std::fprintf(stderr, "ok: common 3-view at every node\n");

  // 2. All 300 multicasts (100 per node) delivered everywhere, in the
  //    full view — total order means n=300 appears exactly once per node.
  if (!await(children, 60000, [&]() {
        for (const Child& c : children)
          if (!contains_after(c.out, 0, "deliver n=300 ")) return false;
        return true;
      })) {
    dump_outputs(children);
    die("nodes never delivered all 300 multicasts");
  }
  std::fprintf(stderr, "ok: 300 deliveries at every node\n");

  // Let each node's periodic trace flush cover the now-quiescent run, so
  // the victim's dump includes every multicast it sent.
  ::usleep(500 * 1000);

  // 3. SIGKILL node 2; survivors must install the 2-view {0,1}.
  const std::size_t kill_offset[2] = {children[0].out.size(),
                                      children[1].out.size()};
  ::kill(children[2].pid, SIGKILL);
  reap(children[2]);
  const std::string survivor_view = "size=2 members=0,1";
  if (!await(children, 60000, [&]() {
        return contains_after(children[0].out, kill_offset[0],
                              survivor_view) &&
               contains_after(children[1].out, kill_offset[1], survivor_view);
      })) {
    dump_outputs(children);
    die("survivors never installed the 2-view after the kill");
  }
  std::fprintf(stderr, "ok: survivors installed the 2-view\n");

  // 4. Graceful shutdown of the survivors.
  ::kill(children[0].pid, SIGTERM);
  ::kill(children[1].pid, SIGTERM);
  reap(children[0]);
  reap(children[1]);
  for (int i = 0; i < 2; ++i) {
    if (!WIFEXITED(children[i].exit_status) ||
        WEXITSTATUS(children[i].exit_status) != 0) {
      dump_outputs(children);
      die("survivor node" + std::to_string(i) + " exited uncleanly");
    }
    if (!contains_after(children[i].out, 0, "summary ")) {
      dump_outputs(children);
      die("survivor node" + std::to_string(i) + " printed no summary");
    }
  }
  std::fprintf(stderr, "ok: survivors exited cleanly\n");

  // 5. The union of the three traces passes the view-synchrony checker.
  std::vector<std::string> traces;
  for (int i = 0; i < kNodes; ++i) {
    const std::string path =
        dir + "/evs_node-site" + std::to_string(i) + ".trace.jsonl";
    if (::access(path.c_str(), R_OK) != 0) die("missing trace: " + path);
    traces.push_back(path);
  }
  const pid_t checker = ::fork();
  if (checker < 0) die("fork() failed");
  if (checker == 0) {
    ::execl(trace_check.c_str(), trace_check.c_str(), "--merge",
            traces[0].c_str(), traces[1].c_str(), traces[2].c_str(),
            static_cast<char*>(nullptr));
    std::perror("execl");
    _exit(127);
  }
  int status = 0;
  ::waitpid(checker, &status, 0);
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    dump_outputs(children);
    die("trace_check found violations in the merged traces");
  }
  std::fprintf(stderr, "ok: merged traces pass trace_check\n");

  // Success: clean up the scratch directory.
  for (const std::string& path : traces) {
    const std::string stem = path.substr(0, path.size() - sizeof(".trace.jsonl") + 1);
    ::unlink((stem + ".trace.jsonl").c_str());
    ::unlink((stem + ".chrome.json").c_str());
    ::unlink((stem + ".metrics.json").c_str());
  }
  for (const std::string& path : config_paths) ::unlink(path.c_str());
  ::rmdir(dir.c_str());
  std::printf("PASS\n");
  return 0;
}
