#include <gtest/gtest.h>

#include "common/check.hpp"
#include "gms/policy.hpp"
#include "gms/view.hpp"
#include "gms/wire.hpp"

namespace evs::gms {
namespace {

ProcessId pid(std::uint32_t site, std::uint32_t inc = 1) {
  return ProcessId{SiteId{site}, inc};
}

TEST(View, ContainsAndRank) {
  View v;
  v.id = ViewId{3, pid(0)};
  v.members = {pid(0), pid(2), pid(5)};
  EXPECT_TRUE(v.contains(pid(2)));
  EXPECT_FALSE(v.contains(pid(1)));
  EXPECT_EQ(v.rank_of(pid(0)), 0u);
  EXPECT_EQ(v.rank_of(pid(5)), 2u);
  EXPECT_EQ(v.primary(), pid(0));
}

TEST(View, RankOfNonMemberThrows) {
  View v;
  v.members = {pid(0)};
  EXPECT_THROW(v.rank_of(pid(9)), evs::InvariantViolation);
}

TEST(View, CodecRoundTrip) {
  View v;
  v.id = ViewId{17, pid(3, 2)};
  v.members = {pid(1), pid(3, 2), pid(7)};
  Encoder enc;
  v.encode(enc);
  Decoder dec(enc.buffer());
  EXPECT_EQ(View::decode(dec), v);
}

TEST(View, DecodeRejectsUnsortedMembers) {
  View v;
  v.id = ViewId{1, pid(0)};
  v.members = {pid(0), pid(1)};
  Encoder enc;
  enc.put_view_id(v.id);
  // Encode members out of order by hand.
  enc.put_varint(2);
  enc.put_process(pid(1));
  enc.put_process(pid(0));
  Decoder dec(enc.buffer());
  EXPECT_THROW(View::decode(dec), DecodeError);
}

TEST(ViewId, OrderingByEpochThenCoordinator) {
  const ViewId a{1, pid(5)};
  const ViewId b{2, pid(0)};
  const ViewId c{2, pid(1)};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
}

TEST(Policy, BatchAdmitsEveryone) {
  const auto result = admit(JoinPolicy::Batch, {pid(1), pid(2)},
                            {pid(1), pid(2), pid(3), pid(4)});
  EXPECT_EQ(result, (std::vector<ProcessId>{pid(1), pid(2), pid(3), pid(4)}));
}

TEST(Policy, OneAtATimeAdmitsSingleNewcomer) {
  const auto result = admit(JoinPolicy::OneAtATime, {pid(1), pid(2)},
                            {pid(1), pid(2), pid(3), pid(4)});
  EXPECT_EQ(result, (std::vector<ProcessId>{pid(1), pid(2), pid(3)}));
}

TEST(Policy, ShrinkIsNeverRestricted) {
  // Both policies drop unreachable members immediately.
  for (const auto policy : {JoinPolicy::Batch, JoinPolicy::OneAtATime}) {
    const auto result =
        admit(policy, {pid(1), pid(2), pid(3)}, {pid(1), pid(3)});
    EXPECT_EQ(result, (std::vector<ProcessId>{pid(1), pid(3)}));
  }
}

TEST(Policy, ShrinkAndGrowCombined) {
  const auto batch = admit(JoinPolicy::Batch, {pid(1), pid(2)},
                           {pid(2), pid(5), pid(6)});
  EXPECT_EQ(batch, (std::vector<ProcessId>{pid(2), pid(5), pid(6)}));
  const auto one = admit(JoinPolicy::OneAtATime, {pid(1), pid(2)},
                         {pid(2), pid(5), pid(6)});
  EXPECT_EQ(one, (std::vector<ProcessId>{pid(2), pid(5)}));
}

TEST(Policy, NoChangeReturnsCurrent) {
  const std::vector<ProcessId> members{pid(1), pid(2)};
  EXPECT_EQ(admit(JoinPolicy::Batch, members, members), members);
  EXPECT_EQ(admit(JoinPolicy::OneAtATime, members, members), members);
}

TEST(Wire, ProposeRoundTrip) {
  Propose msg;
  msg.round = RoundId{9, pid(1)};
  msg.members = {pid(1), pid(2)};
  Encoder enc;
  msg.encode(enc);
  Decoder dec(enc.buffer());
  const Propose out = Propose::decode(dec);
  EXPECT_EQ(out.round, msg.round);
  EXPECT_EQ(out.members, msg.members);
}

TEST(Wire, AckRoundTripWithMessagesAndContext) {
  Ack msg;
  msg.round = RoundId{4, pid(0)};
  msg.prior_view = ViewId{3, pid(0)};
  msg.max_number_seen = 12;
  msg.unstable = {FlushedMessage{pid(1), 1, to_bytes("a")},
                  FlushedMessage{pid(2), 7, to_bytes("bb")}};
  msg.context = to_bytes("ctx");
  Encoder enc;
  msg.encode(enc);
  Decoder dec(enc.buffer());
  const Ack out = Ack::decode(dec);
  EXPECT_EQ(out.round, msg.round);
  EXPECT_EQ(out.prior_view, msg.prior_view);
  EXPECT_EQ(out.max_number_seen, 12u);
  EXPECT_EQ(out.unstable, msg.unstable);
  EXPECT_EQ(out.context, msg.context);
}

TEST(Wire, InstallRoundTrip) {
  Install msg;
  msg.round = RoundId{8, pid(0)};
  msg.view.id = ViewId{8, pid(0)};
  msg.view.members = {pid(0), pid(1)};
  msg.contexts = {MemberContext{pid(0), ViewId{5, pid(0)}, to_bytes("c0")},
                  MemberContext{pid(1), ViewId{6, pid(1)}, to_bytes("c1")}};
  msg.unions = {{ViewId{5, pid(0)}, {FlushedMessage{pid(0), 1, to_bytes("m")}}},
                {ViewId{6, pid(1)}, {}}};
  Encoder enc;
  msg.encode(enc);
  Decoder dec(enc.buffer());
  const Install out = Install::decode(dec);
  EXPECT_EQ(out.round, msg.round);
  EXPECT_EQ(out.view, msg.view);
  EXPECT_EQ(out.contexts, msg.contexts);
  EXPECT_EQ(out.unions, msg.unions);
}

TEST(Wire, NackRoundTrip) {
  Nack msg;
  msg.round = RoundId{2, pid(3)};
  msg.max_number_seen = 99;
  Encoder enc;
  msg.encode(enc);
  Decoder dec(enc.buffer());
  const Nack out = Nack::decode(dec);
  EXPECT_EQ(out.round, msg.round);
  EXPECT_EQ(out.max_number_seen, 99u);
}

TEST(Wire, DataAndStabilityRoundTrip) {
  DataMsg data;
  data.view = ViewId{2, pid(0)};
  data.seq = 41;
  data.payload = to_bytes("payload");
  Encoder enc;
  data.encode(enc);
  Decoder dec(enc.buffer());
  const DataMsg out = DataMsg::decode(dec);
  EXPECT_EQ(out.view, data.view);
  EXPECT_EQ(out.seq, 41u);
  EXPECT_EQ(out.payload, data.payload);

  StabilityMsg stab;
  stab.view = ViewId{2, pid(0)};
  stab.delivered_upto = {0, 5, 17};
  Encoder enc2;
  stab.encode(enc2);
  Decoder dec2(enc2.buffer());
  const StabilityMsg out2 = StabilityMsg::decode(dec2);
  EXPECT_EQ(out2.view, stab.view);
  EXPECT_EQ(out2.delivered_upto, stab.delivered_upto);
}

TEST(Wire, ChannelFrameRoundTrip) {
  Encoder body;
  body.put_string("x");
  const Bytes framed = frame(Channel::Data, body);
  Decoder dec(framed);
  EXPECT_EQ(peek_channel(dec), Channel::Data);
  EXPECT_EQ(dec.get_string(), "x");
}

TEST(Wire, UnknownChannelThrows) {
  Bytes bad{99};
  Decoder dec(bad);
  EXPECT_THROW(peek_channel(dec), DecodeError);
}

}  // namespace
}  // namespace evs::gms
