#include <gtest/gtest.h>

#include <set>
#include <string>

#include "objects/lock_manager.hpp"
#include "objects/mergeable_kv.hpp"
#include "objects/parallel_db.hpp"
#include "objects/replicated_file.hpp"
#include "common/log.hpp"
#include "support/object_cluster.hpp"

namespace evs::test {
namespace {

using app::ClassifierMode;
using app::GroupObjectConfig;
using app::Mode;
using objects::LockManager;
using objects::MergeableKv;
using objects::ParallelDb;
using objects::ReplicatedFile;
using objects::ReplicatedFileConfig;

ReplicatedFileConfig file_config(const std::vector<SiteId>& universe,
                                 ClassifierMode classifier = ClassifierMode::Enriched) {
  ReplicatedFileConfig cfg;
  cfg.object.endpoint.universe = universe;
  cfg.object.classifier = classifier;
  return cfg;
}

GroupObjectConfig plain_config(const std::vector<SiteId>& universe) {
  GroupObjectConfig cfg;
  cfg.endpoint.universe = universe;
  return cfg;
}

// ------------------------------------------------------- ReplicatedFile ---

TEST(ReplicatedFile, GroupFormsAndCreatesInitialState) {
  ObjectCluster<ReplicatedFile, ReplicatedFileConfig> c(
      3, 1, [](const auto& u) { return file_config(u); });
  ASSERT_TRUE(c.await_all_normal(c.all_indices()));
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(c.obj(i).state_current());
    EXPECT_GE(c.obj(i).object_stats().creations, 1u);
  }
}

TEST(ReplicatedFile, WriteReplicatesToAllMembers) {
  ObjectCluster<ReplicatedFile, ReplicatedFileConfig> c(
      3, 2, [](const auto& u) { return file_config(u); });
  ASSERT_TRUE(c.await_all_normal(c.all_indices()));
  ASSERT_TRUE(c.obj(0).write("hello world"));
  ASSERT_TRUE(c.await([&]() {
    for (std::size_t i = 0; i < 3; ++i) {
      if (c.obj(i).content() != "hello world") return false;
    }
    return true;
  }));
  EXPECT_EQ(c.obj(1).read(), "hello world");
}

TEST(ReplicatedFile, ConcurrentWritesResolveByTotalOrder) {
  ObjectCluster<ReplicatedFile, ReplicatedFileConfig> c(
      3, 3, [](const auto& u) { return file_config(u); });
  ASSERT_TRUE(c.await_all_normal(c.all_indices()));
  ASSERT_TRUE(c.obj(0).write("from-zero"));
  ASSERT_TRUE(c.obj(2).write("from-two"));
  ASSERT_TRUE(c.await([&]() {
    return c.obj(0).writes_applied() == 2 && c.obj(1).writes_applied() == 2 &&
           c.obj(2).writes_applied() == 2;
  }));
  // All replicas converge to the same winner at the same version.
  EXPECT_EQ(c.obj(0).content(), c.obj(1).content());
  EXPECT_EQ(c.obj(1).content(), c.obj(2).content());
  EXPECT_EQ(c.obj(0).version(), c.obj(2).version());
}

TEST(ReplicatedFile, MinorityPartitionIsReducedReadsOnly) {
  ObjectCluster<ReplicatedFile, ReplicatedFileConfig> c(
      3, 4, [](const auto& u) { return file_config(u); });
  ASSERT_TRUE(c.await_all_normal(c.all_indices()));
  ASSERT_TRUE(c.obj(0).write("pre-partition"));
  ASSERT_TRUE(c.await([&]() { return c.obj(2).content() == "pre-partition"; }));

  c.world().network().set_partition({{c.site(0), c.site(1)}, {c.site(2)}});
  ASSERT_TRUE(c.await([&]() { return c.obj(2).mode() == Mode::Reduced; }));
  // R-mode: the reduced operation (read) works and may be stale; the full
  // operation (write) is refused.
  EXPECT_EQ(c.obj(2).read(), "pre-partition");
  EXPECT_FALSE(c.obj(2).write("should fail"));
  // The majority side keeps serving writes.
  ASSERT_TRUE(c.await_all_normal({0, 1}));
  EXPECT_TRUE(c.obj(0).write("majority-write"));
}

TEST(ReplicatedFile, JoinTriggersTransferAndServingSubviewIsUndisturbed) {
  ObjectCluster<ReplicatedFile, ReplicatedFileConfig> c(
      3, 5, [](const auto& u) { return file_config(u); }, {}, false);
  c.spawn_at(c.site(0));
  c.spawn_at(c.site(1));
  ASSERT_TRUE(c.await_all_normal({0, 1}));
  ASSERT_TRUE(c.obj(0).write("important data"));
  ASSERT_TRUE(c.await([&]() { return c.obj(1).content() == "important data"; }));

  const auto failures_before = c.obj(0).mode_machine()->count(app::Transition::Failure);
  const auto reconf_before = c.obj(0).mode_machine()->count(app::Transition::Reconfigure);

  c.spawn_at(c.site(2));
  ASSERT_TRUE(c.await_all_normal({0, 1, 2}));
  // The joiner received the state by transfer.
  EXPECT_EQ(c.obj(2).content(), "important data");
  EXPECT_GE(c.obj(2).object_stats().transfers, 1u);
  EXPECT_TRUE(c.obj(2).object_stats().last_problems & app::kStateTransfer);
  // The up-to-date subview was never disturbed: no Failure, no
  // Reconfigure at the old members (the enriched-view payoff).
  EXPECT_EQ(c.obj(0).mode_machine()->count(app::Transition::Failure),
            failures_before);
  EXPECT_EQ(c.obj(0).mode_machine()->count(app::Transition::Reconfigure),
            reconf_before);
}

TEST(ReplicatedFile, TotalFailureRecoversFreshestStateSkeenStyle) {
  ObjectCluster<ReplicatedFile, ReplicatedFileConfig> c(
      3, 6, [](const auto& u) { return file_config(u); });
  ASSERT_TRUE(c.await_all_normal(c.all_indices()));
  ASSERT_TRUE(c.obj(0).write("v1"));
  ASSERT_TRUE(c.await([&]() { return c.obj(2).content() == "v1"; }));

  // Site 0 dies first; the surviving majority accepts one more write,
  // which site 0's stable store never sees.
  c.world().crash_site(c.site(0));
  ASSERT_TRUE(c.await_all_normal({1, 2}));
  ASSERT_TRUE(c.obj(1).write("v2-after-crash"));
  ASSERT_TRUE(c.await([&]() { return c.obj(2).content() == "v2-after-crash"; }));

  // Total failure, then everyone recovers.
  c.world().crash_site(c.site(1));
  c.world().crash_site(c.site(2));
  c.world().run_for(500 * kMillisecond);
  for (const SiteId site : c.sites()) c.world().respawn(site);
  ASSERT_TRUE(c.await_all_normal(c.all_indices()));
  // State creation must pick the freshest copy — not site 0's stale "v1".
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(c.obj(i).content(), "v2-after-crash") << "site " << i;
  }
}

TEST(ReplicatedFile, PartitionHealTransfersToStaleMinority) {
  log::set_level(log::Level::Debug);
  ObjectCluster<ReplicatedFile, ReplicatedFileConfig> c(
      3, 7, [](const auto& u) { return file_config(u); });
  ASSERT_TRUE(c.await_all_normal(c.all_indices()));
  c.world().network().set_partition({{c.site(0), c.site(1)}, {c.site(2)}});
  ASSERT_TRUE(c.await_all_normal({0, 1}));
  ASSERT_TRUE(c.obj(0).write("written during partition"));
  c.world().run_for(2 * kSecond);

  c.world().network().heal();
  ASSERT_TRUE(c.await_all_normal(c.all_indices()));
  EXPECT_EQ(c.obj(2).content(), "written during partition");
}

TEST(ReplicatedFile, WeightedVotesChangeTheQuorum) {
  // Site 0 alone holds 3 of 5 votes: it can keep writing when isolated.
  ObjectCluster<ReplicatedFile, ReplicatedFileConfig> c(
      3, 8, [](const auto& u) {
        auto cfg = file_config(u);
        cfg.votes[u[0]] = 3;
        return cfg;
      });
  ASSERT_TRUE(c.await_all_normal(c.all_indices()));
  c.world().network().set_partition({{c.site(0)}, {c.site(1), c.site(2)}});
  ASSERT_TRUE(c.await([&]() {
    return c.obj(0).mode() == Mode::Normal && c.obj(0).view().size() == 1;
  }));
  EXPECT_TRUE(c.obj(0).write("dictator"));
  // The two-site side holds only 2 of 5 votes: reduced.
  ASSERT_TRUE(c.await([&]() { return c.obj(1).mode() == Mode::Reduced; }));
  EXPECT_FALSE(c.obj(1).write("nope"));
}

TEST(ReplicatedFile, FlatDiscoveryModeAlsoConvergesButPaysForIt) {
  ObjectCluster<ReplicatedFile, ReplicatedFileConfig> c(
      3, 9,
      [](const auto& u) { return file_config(u, ClassifierMode::FlatDiscovery); },
      {}, false);
  c.spawn_at(c.site(0));
  c.spawn_at(c.site(1));
  ASSERT_TRUE(c.await_all_normal({0, 1}));
  ASSERT_TRUE(c.obj(0).write("flat data"));
  ASSERT_TRUE(c.await([&]() { return c.obj(1).content() == "flat data"; }));

  c.spawn_at(c.site(2));
  ASSERT_TRUE(c.await_all_normal({0, 1, 2}));
  EXPECT_EQ(c.obj(2).content(), "flat data");
  // The flat configuration had to run discovery rounds and could not
  // classify locally (ambiguity observed at least once).
  EXPECT_GT(c.obj(0).object_stats().discovery_rounds, 0u);
  EXPECT_GT(c.obj(2).object_stats().ambiguous_classifications, 0u);
  // And every member shipped a snapshot, not just subview reps.
  EXPECT_GT(c.obj(1).object_stats().discovery_messages, 0u);
}

// ----------------------------------------------------------- ParallelDb ---

std::set<std::string> distributed_scan(
    ObjectCluster<ParallelDb, GroupObjectConfig>& c,
    const std::vector<std::size_t>& indices, bool* exactly_once) {
  std::set<std::string> seen;
  *exactly_once = true;
  for (const std::size_t i : indices) {
    for (const auto& [key, value] : c.obj(i).local_scan()) {
      if (!seen.insert(key).second) *exactly_once = false;
    }
  }
  return seen;
}

TEST(ParallelDb, LookupResponsibilityCoversEveryKeyExactlyOnce) {
  ObjectCluster<ParallelDb, GroupObjectConfig> c(
      4, 10, [](const auto& u) { return plain_config(u); });
  ASSERT_TRUE(c.await_all_normal(c.all_indices()));
  for (int k = 0; k < 40; ++k)
    ASSERT_TRUE(c.obj(k % 4).insert("key" + std::to_string(k), "v"));
  ASSERT_TRUE(c.await([&]() { return c.obj(3).size() == 40; }));

  bool exactly_once = false;
  const auto covered = distributed_scan(c, c.all_indices(), &exactly_once);
  EXPECT_EQ(covered.size(), 40u);
  EXPECT_TRUE(exactly_once) << "a key was scanned by two members";
}

TEST(ParallelDb, ResponsibilityRebalancesAfterCrash) {
  ObjectCluster<ParallelDb, GroupObjectConfig> c(
      4, 11, [](const auto& u) { return plain_config(u); });
  ASSERT_TRUE(c.await_all_normal(c.all_indices()));
  for (int k = 0; k < 30; ++k)
    ASSERT_TRUE(c.obj(0).insert("key" + std::to_string(k), "v"));
  ASSERT_TRUE(c.await([&]() { return c.obj(3).size() == 30; }));

  c.world().crash_site(c.site(3));
  ASSERT_TRUE(c.await_all_normal({0, 1, 2}));
  bool exactly_once = false;
  const auto covered = distributed_scan(c, {0, 1, 2}, &exactly_once);
  EXPECT_EQ(covered.size(), 30u);  // nothing lost, nothing skipped
  EXPECT_TRUE(exactly_once);
}

TEST(ParallelDb, RModeDoesNotExistForThisObject) {
  // The paper: "the only external operation (look-up) can be performed in
  // any view. Thus, R-mode does not exist."
  ObjectCluster<ParallelDb, GroupObjectConfig> c(
      3, 12, [](const auto& u) { return plain_config(u); });
  ASSERT_TRUE(c.await_all_normal(c.all_indices()));
  c.world().network().set_partition({{c.site(0)}, {c.site(1), c.site(2)}});
  ASSERT_TRUE(c.await([&]() {
    return c.obj(0).view().size() == 1 && c.obj(0).mode() == Mode::Normal;
  }));
  EXPECT_EQ(c.obj(0).mode_machine()->count(app::Transition::Failure), 0u);
}

TEST(ParallelDb, PartitionedInsertsUnionOnHeal) {
  ObjectCluster<ParallelDb, GroupObjectConfig> c(
      4, 13, [](const auto& u) { return plain_config(u); });
  ASSERT_TRUE(c.await_all_normal(c.all_indices()));
  c.world().network().set_partition(
      {{c.site(0), c.site(1)}, {c.site(2), c.site(3)}});
  ASSERT_TRUE(c.await_all_normal({0, 1}));
  ASSERT_TRUE(c.await_all_normal({2, 3}));
  ASSERT_TRUE(c.obj(0).insert("left", "L"));
  ASSERT_TRUE(c.obj(2).insert("right", "R"));
  c.world().run_for(2 * kSecond);

  c.world().network().heal();
  ASSERT_TRUE(c.await_all_normal(c.all_indices()));
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(c.obj(i).get("left"), "L") << i;
    EXPECT_EQ(c.obj(i).get("right"), "R") << i;
    EXPECT_GE(c.obj(i).object_stats().merges, 1u);
  }
  bool exactly_once = false;
  distributed_scan(c, c.all_indices(), &exactly_once);
  EXPECT_TRUE(exactly_once);
}

// ---------------------------------------------------------- LockManager ---

GroupObjectConfig lock_config(const std::vector<SiteId>& universe) {
  return plain_config(universe);
}

// A lease long enough that these behavioural tests never cross expiry.
objects::LockConfig long_lease_config(const std::vector<SiteId>& universe) {
  return objects::LockConfig{plain_config(universe), 120 * kSecond};
}

TEST(LockManager, AcquireReleaseBasics) {
  ObjectCluster<LockManager, objects::LockConfig> c(3, 14, long_lease_config);
  ASSERT_TRUE(c.await_all_normal(c.all_indices()));
  ASSERT_TRUE(c.obj(1).acquire());
  ASSERT_TRUE(c.await([&]() { return c.obj(1).i_hold_the_lock(); }));
  // Everyone agrees on the holder.
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_EQ(c.obj(i).holder(), c.obj(1).id());
  // A competing acquire does not steal.
  ASSERT_TRUE(c.obj(2).acquire());
  c.world().run_for(2 * kSecond);
  EXPECT_EQ(c.obj(2).holder(), c.obj(1).id());
  // Release frees it for the next acquirer.
  ASSERT_TRUE(c.obj(1).release());
  ASSERT_TRUE(c.await([&]() { return !c.obj(0).holder().has_value(); }));
  ASSERT_TRUE(c.obj(2).acquire());
  ASSERT_TRUE(c.await([&]() { return c.obj(2).i_hold_the_lock(); }));
}

TEST(LockManager, ConcurrentAcquiresGrantExactlyOne) {
  ObjectCluster<LockManager, objects::LockConfig> c(4, 15, long_lease_config);
  ASSERT_TRUE(c.await_all_normal(c.all_indices()));
  for (std::size_t i = 0; i < 4; ++i) ASSERT_TRUE(c.obj(i).acquire());
  c.world().run_for(3 * kSecond);
  std::size_t holders = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    if (c.obj(i).i_hold_the_lock()) ++holders;
  }
  EXPECT_EQ(holders, 1u);
  // And everyone agrees who it is.
  for (std::size_t i = 1; i < 4; ++i)
    EXPECT_EQ(c.obj(i).holder(), c.obj(0).holder());
}

TEST(LockManager, MinorityHolderLosesLockMajorityRegrants) {
  ObjectCluster<LockManager, GroupObjectConfig> c(3, 16, lock_config);
  ASSERT_TRUE(c.await_all_normal(c.all_indices()));
  ASSERT_TRUE(c.obj(2).acquire());
  ASSERT_TRUE(c.await([&]() { return c.obj(2).i_hold_the_lock(); }));

  // Isolate the holder in a minority.
  c.world().network().set_partition({{c.site(0), c.site(1)}, {c.site(2)}});
  ASSERT_TRUE(c.await([&]() { return c.obj(2).mode() == Mode::Reduced; }));
  EXPECT_FALSE(c.obj(2).i_hold_the_lock());  // lost with the quorum
  EXPECT_FALSE(c.obj(2).acquire());          // and cannot reacquire

  // The majority side can grant it to someone else.
  ASSERT_TRUE(c.await_all_normal({0, 1}));
  ASSERT_TRUE(c.await([&]() { return c.obj(0).acquire(); }));
  ASSERT_TRUE(c.await([&]() { return c.obj(0).i_hold_the_lock(); }));

  // Safety across the whole system: never two holders.
  std::size_t holders = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    if (c.obj(i).i_hold_the_lock()) ++holders;
  }
  EXPECT_EQ(holders, 1u);

  // After healing, everyone converges on the majority's holder.
  c.world().network().heal();
  ASSERT_TRUE(c.await_all_normal(c.all_indices()));
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_EQ(c.obj(i).holder(), c.obj(0).id());
}

TEST(LockManager, HolderCrashFreesTheLock) {
  ObjectCluster<LockManager, GroupObjectConfig> c(3, 17, lock_config);
  ASSERT_TRUE(c.await_all_normal(c.all_indices()));
  ASSERT_TRUE(c.obj(2).acquire());
  ASSERT_TRUE(c.await([&]() { return c.obj(2).i_hold_the_lock(); }));
  c.world().crash_site(c.site(2));
  ASSERT_TRUE(c.await_all_normal({0, 1}));
  EXPECT_FALSE(c.obj(0).holder().has_value());
  ASSERT_TRUE(c.obj(1).acquire());
  ASSERT_TRUE(c.await([&]() { return c.obj(1).i_hold_the_lock(); }));
}

// ----------------------------------------------------------- MergeableKv ---

TEST(LockManager, LeaseExpiresAndLockCanBeReacquired) {
  // Fixed-term leases (the asynchronous-safety fence): a grant dies after
  // its term even if the holder never releases, and only then can anyone
  // re-acquire.
  objects::LockConfig cfg;
  ObjectCluster<LockManager, objects::LockConfig> c(
      3, 20, [](const auto& u) {
        return objects::LockConfig{plain_config(u), 1 * kSecond};
      });
  ASSERT_TRUE(c.await_all_normal(c.all_indices()));
  ASSERT_TRUE(c.obj(0).acquire());
  ASSERT_TRUE(c.await([&]() { return c.obj(0).i_hold_the_lock(); }));
  // A competitor is refused while the lease runs...
  ASSERT_TRUE(c.obj(1).acquire());
  c.world().run_for(300 * kMillisecond);
  EXPECT_FALSE(c.obj(1).i_hold_the_lock());
  // ...the holder's own belief ends exactly at expiry...
  c.world().run_for(1 * kSecond);
  EXPECT_FALSE(c.obj(0).i_hold_the_lock());
  EXPECT_FALSE(c.obj(2).holder().has_value());
  // ...and a fresh acquire succeeds.
  ASSERT_TRUE(c.obj(1).acquire());
  ASSERT_TRUE(c.await([&]() { return c.obj(1).i_hold_the_lock(); }));
}

TEST(MergeableKv, ProgressesInBothPartitionsAndMergesOnHeal) {
  ObjectCluster<MergeableKv, GroupObjectConfig> c(
      4, 18, [](const auto& u) { return plain_config(u); });
  ASSERT_TRUE(c.await_all_normal(c.all_indices()));
  ASSERT_TRUE(c.obj(0).put("shared", "original"));
  c.world().run_for(2 * kSecond);

  c.world().network().set_partition(
      {{c.site(0), c.site(1)}, {c.site(2), c.site(3)}});
  ASSERT_TRUE(c.await_all_normal({0, 1}));
  ASSERT_TRUE(c.await_all_normal({2, 3}));
  // Both sides keep accepting writes — the weak-consistency progress the
  // primary-partition model forbids.
  ASSERT_TRUE(c.obj(0).put("left-key", "L"));
  ASSERT_TRUE(c.obj(2).put("right-key", "R"));
  ASSERT_TRUE(c.obj(2).put("shared", "rewritten-right"));
  c.world().run_for(2 * kSecond);

  c.world().network().heal();
  ASSERT_TRUE(c.await_all_normal(c.all_indices()));
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(c.obj(i).get("left-key"), "L") << i;
    EXPECT_EQ(c.obj(i).get("right-key"), "R") << i;
    // LWW: the partition-era rewrite has the higher Lamport stamp.
    EXPECT_EQ(c.obj(i).get("shared"), "rewritten-right") << i;
    EXPECT_TRUE(c.obj(i).object_stats().last_problems & app::kStateMerging) << i;
  }
}

TEST(MergeableKv, AllReplicasConvergeToIdenticalState) {
  ObjectCluster<MergeableKv, GroupObjectConfig> c(
      3, 19, [](const auto& u) { return plain_config(u); });
  ASSERT_TRUE(c.await_all_normal(c.all_indices()));
  for (int k = 0; k < 20; ++k) {
    ASSERT_TRUE(
        c.obj(k % 3).put("k" + std::to_string(k % 7), "v" + std::to_string(k)));
  }
  c.world().run_for(3 * kSecond);
  for (int k = 0; k < 7; ++k) {
    const auto key = "k" + std::to_string(k);
    EXPECT_EQ(c.obj(0).get(key), c.obj(1).get(key));
    EXPECT_EQ(c.obj(1).get(key), c.obj(2).get(key));
  }
}

}  // namespace
}  // namespace evs::test
