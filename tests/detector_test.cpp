#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "detector/heartbeat.hpp"
#include "gms/wire.hpp"
#include "sim/world.hpp"

namespace evs::detector {
namespace {

// Minimal actor hosting a detector, speaking the heartbeat channel.
class DetectorActor : public sim::Actor {
 public:
  DetectorActor(std::vector<SiteId> universe, DetectorConfig config)
      : universe_(std::move(universe)), config_(config) {}

  void on_start() override {
    DetectorHost host;
    host.send_heartbeat = [this](SiteId site) {
      Encoder empty;
      world().network().send_to_site(id(), site,
                                     gms::frame(gms::Channel::Heartbeat, empty));
    };
    host.set_timer = [this](SimDuration d, std::function<void()> fn) {
      set_timer(d, std::move(fn));
    };
    host.now = [this]() { return scheduler().now(); };
    detector_ = std::make_unique<HeartbeatDetector>(
        id(), universe_, std::move(host), config_,
        [this](const std::vector<ProcessId>& reachable) {
          ++changes_;
          last_ = reachable;
        });
    detector_->start();
  }

  void on_message(ProcessId from, const Bytes& payload) override {
    Decoder dec(payload);
    if (gms::peek_channel(dec) == gms::Channel::Heartbeat)
      detector_->on_heartbeat(from);
  }

  HeartbeatDetector& detector() { return *detector_; }
  int changes() const { return changes_; }
  const std::vector<ProcessId>& last() const { return last_; }

 private:
  std::vector<SiteId> universe_;
  DetectorConfig config_;
  std::unique_ptr<HeartbeatDetector> detector_;
  int changes_ = 0;
  std::vector<ProcessId> last_;
};

struct DetectorFixture {
  explicit DetectorFixture(std::size_t n, std::uint64_t seed = 1,
                           sim::NetworkConfig net = {}, DetectorConfig cfg = {})
      : world(seed, net) {
    sites = world.add_sites(n);
    for (const SiteId site : sites)
      actors.push_back(&world.spawn<DetectorActor>(site, sites_vec(), cfg));
  }
  std::vector<SiteId> sites_vec() const { return sites; }

  sim::World world;
  std::vector<SiteId> sites;
  std::vector<DetectorActor*> actors;
};

TEST(Detector, DiscoversAllPeers) {
  DetectorFixture f(4);
  f.world.run_for(500 * kMillisecond);
  for (auto* actor : f.actors) {
    EXPECT_EQ(actor->detector().reachable().size(), 4u);
  }
}

TEST(Detector, SuspectsCrashedProcess) {
  DetectorFixture f(3);
  f.world.run_for(500 * kMillisecond);
  const ProcessId victim = f.actors[2]->id();
  f.world.crash_site(f.sites[2]);
  f.world.run_for(500 * kMillisecond);
  EXPECT_FALSE(f.actors[0]->detector().is_reachable(victim));
  EXPECT_FALSE(f.actors[1]->detector().is_reachable(victim));
  EXPECT_EQ(f.actors[0]->detector().reachable().size(), 2u);
}

TEST(Detector, PartitionSuspectsOtherSide) {
  DetectorFixture f(4);
  f.world.run_for(500 * kMillisecond);
  f.world.network().set_partition({{f.sites[0], f.sites[1]},
                                   {f.sites[2], f.sites[3]}});
  f.world.run_for(500 * kMillisecond);
  EXPECT_EQ(f.actors[0]->detector().reachable().size(), 2u);
  EXPECT_EQ(f.actors[3]->detector().reachable().size(), 2u);
  EXPECT_TRUE(f.actors[0]->detector().is_reachable(f.actors[1]->id()));
  EXPECT_FALSE(f.actors[0]->detector().is_reachable(f.actors[2]->id()));
}

TEST(Detector, RecoversReachabilityAfterHeal) {
  DetectorFixture f(4);
  f.world.run_for(500 * kMillisecond);
  f.world.network().set_partition({{f.sites[0]}, {f.sites[1], f.sites[2], f.sites[3]}});
  f.world.run_for(500 * kMillisecond);
  EXPECT_EQ(f.actors[0]->detector().reachable().size(), 1u);
  f.world.network().heal();
  f.world.run_for(500 * kMillisecond);
  EXPECT_EQ(f.actors[0]->detector().reachable().size(), 4u);
}

TEST(Detector, NewIncarnationSupersedesOld) {
  DetectorFixture f(2);
  f.world.run_for(500 * kMillisecond);
  const ProcessId old_id = f.actors[1]->id();
  f.world.crash_site(f.sites[1]);
  // Respawn a fresh incarnation at the same site.
  auto* fresh =
      &f.world.spawn<DetectorActor>(f.sites[1], f.sites, DetectorConfig{});
  f.world.run_for(500 * kMillisecond);
  EXPECT_FALSE(f.actors[0]->detector().is_reachable(old_id));
  EXPECT_TRUE(f.actors[0]->detector().is_reachable(fresh->id()));
}

TEST(Detector, MarkLeftIsImmediateAndPermanent) {
  DetectorFixture f(3);
  f.world.run_for(500 * kMillisecond);
  const ProcessId peer = f.actors[1]->id();
  f.actors[0]->detector().mark_left(peer);
  EXPECT_FALSE(f.actors[0]->detector().is_reachable(peer));
  // Heartbeats keep arriving but must be ignored.
  f.world.run_for(500 * kMillisecond);
  EXPECT_FALSE(f.actors[0]->detector().is_reachable(peer));
}

TEST(Detector, FalseSuspicionUnderSevereDelay) {
  // Jitter far above the suspect timeout guarantees false suspicions even
  // though nobody crashed — the asynchrony the paper insists on.
  sim::NetworkConfig net;
  net.min_delay = 1 * kMillisecond;
  net.mean_jitter_us = 300'000.0;  // 300ms mean vs 120ms timeout
  DetectorFixture f(3, /*seed=*/5, net);
  f.world.run_for(5 * kSecond);
  std::uint64_t suspicions = 0;
  for (auto* actor : f.actors) suspicions += actor->detector().stats().suspicions;
  EXPECT_GT(suspicions, 0u);
}

TEST(Detector, ReachableAlwaysContainsSelf) {
  DetectorFixture f(1);
  f.world.run_for(200 * kMillisecond);
  const auto reachable = f.actors[0]->detector().reachable();
  ASSERT_EQ(reachable.size(), 1u);
  EXPECT_EQ(reachable[0], f.actors[0]->id());
}

TEST(Detector, ChangeCallbackFiresOnMembershipEvents) {
  DetectorFixture f(2);
  f.world.run_for(500 * kMillisecond);
  const int changes_before = f.actors[0]->changes();
  EXPECT_GE(changes_before, 1);  // discovery of peer
  f.world.crash_site(f.sites[1]);
  f.world.run_for(500 * kMillisecond);
  EXPECT_GT(f.actors[0]->changes(), changes_before);
}

}  // namespace
}  // namespace evs::detector
