#include <gtest/gtest.h>

#include <set>
#include <string>

#include "sim/fault.hpp"
#include "support/cluster.hpp"
#include "support/oracle.hpp"

namespace evs::test {
namespace {

std::string tag(std::size_t site, int n) {
  return "m" + std::to_string(site) + "-" + std::to_string(n);
}

TEST(Vsync, SingletonViewOnStart) {
  Cluster c({.sites = 1});
  ASSERT_TRUE(c.await_stable_view({0}));
  EXPECT_EQ(c.ep(0).view().size(), 1u);
  EXPECT_EQ(c.rec(0).views().size(), 1u);
}

TEST(Vsync, TwoProcessesFormCommonView) {
  Cluster c({.sites = 2});
  ASSERT_TRUE(c.await_stable_view({0, 1}));
  EXPECT_EQ(c.ep(0).view().id, c.ep(1).view().id);
  EXPECT_EQ(c.ep(0).view().size(), 2u);
}

class VsyncGroupSize : public ::testing::TestWithParam<std::size_t> {};

TEST_P(VsyncGroupSize, AllProcessesFormCommonView) {
  Cluster c({.sites = GetParam()});
  ASSERT_TRUE(c.await_stable_view(c.all_indices()));
  const ViewId expected = c.ep(0).view().id;
  for (std::size_t i = 0; i < GetParam(); ++i)
    EXPECT_EQ(c.ep(i).view().id, expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, VsyncGroupSize,
                         ::testing::Values(3, 5, 8, 13));

TEST(Vsync, CrashShrinksView) {
  Cluster c({.sites = 4});
  ASSERT_TRUE(c.await_stable_view({0, 1, 2, 3}));
  c.world().crash_site(c.site(3));
  ASSERT_TRUE(c.await_stable_view({0, 1, 2}));
  EXPECT_EQ(c.ep(0).view().size(), 3u);
}

TEST(Vsync, LateJoinExpandsView) {
  Cluster c({.sites = 3, .spawn_all = false});
  c.spawn_at(c.site(0));
  c.spawn_at(c.site(1));
  ASSERT_TRUE(c.await_stable_view({0, 1}));
  c.spawn_at(c.site(2));
  ASSERT_TRUE(c.await_stable_view({0, 1, 2}));
}

TEST(Vsync, PartitionFormsConcurrentViews) {
  Cluster c({.sites = 5});
  ASSERT_TRUE(c.await_stable_view({0, 1, 2, 3, 4}));
  c.world().network().set_partition(
      {{c.site(0), c.site(1)}, {c.site(2), c.site(3), c.site(4)}});
  ASSERT_TRUE(c.await_stable_view({0, 1}));
  ASSERT_TRUE(c.await_stable_view({2, 3, 4}));
  EXPECT_NE(c.ep(0).view().id, c.ep(2).view().id);
}

TEST(Vsync, MergeAfterHealFormsSingleView) {
  Cluster c({.sites = 5});
  ASSERT_TRUE(c.await_stable_view({0, 1, 2, 3, 4}));
  c.world().network().set_partition(
      {{c.site(0), c.site(1)}, {c.site(2), c.site(3), c.site(4)}});
  ASSERT_TRUE(c.await_stable_view({0, 1}));
  ASSERT_TRUE(c.await_stable_view({2, 3, 4}));
  c.world().network().heal();
  ASSERT_TRUE(c.await_stable_view({0, 1, 2, 3, 4}));
  EXPECT_TRUE(check_vs_properties(recorder_ptrs(c.all_recorders())));
}

TEST(Vsync, IsolatedMinoritySideFormsSingleton) {
  Cluster c({.sites = 3});
  ASSERT_TRUE(c.await_stable_view({0, 1, 2}));
  c.world().network().set_partition({{c.site(0)}, {c.site(1), c.site(2)}});
  ASSERT_TRUE(c.await_stable_view({0}));
  EXPECT_EQ(c.ep(0).view().size(), 1u);
}

TEST(Vsync, MulticastDeliveredToAllMembers) {
  Cluster c({.sites = 3});
  ASSERT_TRUE(c.await_stable_view({0, 1, 2}));
  c.rec(0).multicast("hello");
  ASSERT_TRUE(c.await([&]() {
    for (std::size_t i = 0; i < 3; ++i) {
      if (c.rec(i).deliveries().empty()) return false;
    }
    return true;
  }));
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_EQ(c.rec(i).deliveries().size(), 1u);
    EXPECT_EQ(c.rec(i).deliveries()[0].payload, "hello");
    EXPECT_EQ(c.rec(i).deliveries()[0].sender, c.ep(0).id());
  }
}

TEST(Vsync, SelfDeliveryIsImmediatelyOrdered) {
  Cluster c({.sites = 2});
  ASSERT_TRUE(c.await_stable_view({0, 1}));
  for (int n = 0; n < 5; ++n) c.rec(0).multicast(tag(0, n));
  ASSERT_TRUE(c.await([&]() { return c.rec(1).deliveries().size() == 5; }));
  for (int n = 0; n < 5; ++n) {
    EXPECT_EQ(c.rec(0).deliveries()[n].payload, tag(0, n));
    EXPECT_EQ(c.rec(1).deliveries()[n].payload, tag(0, n));
  }
}

TEST(Vsync, FifoPerSenderUnderLoad) {
  Cluster c({.sites = 3, .seed = 9});
  ASSERT_TRUE(c.await_stable_view({0, 1, 2}));
  const int kMessages = 50;
  for (int n = 0; n < kMessages; ++n) {
    c.rec(0).multicast(tag(0, n));
    c.rec(1).multicast(tag(1, n));
  }
  ASSERT_TRUE(c.await(
      [&]() { return c.rec(2).deliveries().size() == 2 * kMessages; }));
  // Per-sender order must be the sending order.
  int next0 = 0;
  int next1 = 0;
  for (const auto& d : c.rec(2).deliveries()) {
    if (d.sender == c.ep(0).id()) {
      EXPECT_EQ(d.payload, tag(0, next0++));
    } else {
      EXPECT_EQ(d.payload, tag(1, next1++));
    }
  }
  EXPECT_EQ(next0, kMessages);
  EXPECT_EQ(next1, kMessages);
}

TEST(Vsync, AgreementWhenSenderCrashesMidStream) {
  Cluster c({.sites = 4, .seed = 11});
  ASSERT_TRUE(c.await_stable_view({0, 1, 2, 3}));
  // Fire messages and crash the sender while some are in flight.
  for (int n = 0; n < 20; ++n) c.rec(3).multicast(tag(3, n));
  c.world().crash_site(c.site(3));
  ASSERT_TRUE(c.await_stable_view({0, 1, 2}));
  c.world().run_for(2 * kSecond);
  EXPECT_TRUE(check_vs_properties(recorder_ptrs(c.all_recorders())));
  // Survivors must agree exactly (stronger than the pairwise oracle:
  // all three took the same view transition).
  std::set<std::string> s0, s1, s2;
  for (const auto& d : c.rec(0).deliveries()) s0.insert(d.payload);
  for (const auto& d : c.rec(1).deliveries()) s1.insert(d.payload);
  for (const auto& d : c.rec(2).deliveries()) s2.insert(d.payload);
  EXPECT_EQ(s0, s1);
  EXPECT_EQ(s1, s2);
}

TEST(Vsync, SurvivingSenderMessagesAreNeverLost) {
  Cluster c({.sites = 3, .seed = 13});
  ASSERT_TRUE(c.await_stable_view({0, 1, 2}));
  // Sender 0 multicasts, then site 2 crashes, forcing a view change while
  // messages may be in flight. Sender 0 survives, so every survivor must
  // deliver all of its messages (they ride in sender 0's own flush ACK).
  for (int n = 0; n < 30; ++n) c.rec(0).multicast(tag(0, n));
  c.world().crash_site(c.site(2));
  ASSERT_TRUE(c.await_stable_view({0, 1}));
  c.world().run_for(2 * kSecond);
  for (std::size_t i : {std::size_t{0}, std::size_t{1}}) {
    std::set<std::string> got;
    for (const auto& d : c.rec(i).deliveries()) got.insert(d.payload);
    for (int n = 0; n < 30; ++n) {
      EXPECT_TRUE(got.contains(tag(0, n)))
          << "site " << i << " missing " << tag(0, n);
    }
  }
  EXPECT_TRUE(check_vs_properties(recorder_ptrs(c.all_recorders())));
}

TEST(Vsync, MulticastWhileBlockedIsSentInNextView) {
  Cluster c({.sites = 3, .spawn_all = false});
  c.spawn_at(c.site(0));
  c.spawn_at(c.site(1));
  ASSERT_TRUE(c.await_stable_view({0, 1}));
  // Freeze happens during the join of site 2; multicast storms during the
  // change must all come out the other side.
  c.spawn_at(c.site(2));
  for (int n = 0; n < 40; ++n) {
    c.rec(0).multicast(tag(0, n));
    c.world().run_for(5 * kMillisecond);
  }
  ASSERT_TRUE(c.await_stable_view({0, 1, 2}));
  c.world().run_for(2 * kSecond);
  // Site 1 survives alongside site 0 the whole time: it must see all 40.
  std::set<std::string> got;
  for (const auto& d : c.rec(1).deliveries()) got.insert(d.payload);
  EXPECT_EQ(got.size(), 40u);
  EXPECT_TRUE(check_vs_properties(recorder_ptrs(c.all_recorders())));
}

TEST(Vsync, UniquenessAcrossPartitionAndMerge) {
  Cluster c({.sites = 4, .seed = 17});
  ASSERT_TRUE(c.await_stable_view({0, 1, 2, 3}));
  for (int n = 0; n < 10; ++n) c.rec(0).multicast(tag(0, n));
  c.world().network().set_partition(
      {{c.site(0), c.site(1)}, {c.site(2), c.site(3)}});
  ASSERT_TRUE(c.await_stable_view({0, 1}));
  ASSERT_TRUE(c.await_stable_view({2, 3}));
  for (int n = 10; n < 20; ++n) c.rec(0).multicast(tag(0, n));
  for (int n = 0; n < 10; ++n) c.rec(2).multicast(tag(2, n));
  c.world().network().heal();
  ASSERT_TRUE(c.await_stable_view({0, 1, 2, 3}));
  c.world().run_for(2 * kSecond);
  EXPECT_TRUE(check_vs_properties(recorder_ptrs(c.all_recorders())));
}

TEST(Vsync, LeaveShrinksViewQuickly) {
  Cluster c({.sites = 3});
  ASSERT_TRUE(c.await_stable_view({0, 1, 2}));
  c.ep(2).leave();
  ASSERT_TRUE(c.await_stable_view({0, 1}));
  EXPECT_FALSE(c.world().site_alive(c.site(2)));
}

TEST(Vsync, TotalFailureThenRecoveryFormsFreshView) {
  Cluster c({.sites = 3});
  ASSERT_TRUE(c.await_stable_view({0, 1, 2}));
  const ViewId old_view = c.ep(0).view().id;
  for (const auto site : c.sites()) c.world().crash_site(site);
  c.world().run_for(500 * kMillisecond);
  for (const auto site : c.sites()) c.world().respawn(site);
  ASSERT_TRUE(c.await_stable_view({0, 1, 2}));
  EXPECT_NE(c.ep(0).view().id, old_view);
  // Fresh incarnations: every member has a higher incarnation number.
  for (const ProcessId member : c.ep(0).view().members)
    EXPECT_GE(member.incarnation, 2u);
}

TEST(Vsync, ViewEpochsMonotonicallyIncreasePerProcess) {
  Cluster c({.sites = 4, .seed = 23});
  ASSERT_TRUE(c.await_stable_view({0, 1, 2, 3}));
  c.world().network().set_partition(
      {{c.site(0), c.site(1)}, {c.site(2), c.site(3)}});
  c.world().run_for(2 * kSecond);
  c.world().network().heal();
  ASSERT_TRUE(c.await_stable_view({0, 1, 2, 3}));
  for (const auto& rec : c.all_recorders()) {
    const auto& views = rec->views();
    for (std::size_t i = 0; i + 1 < views.size(); ++i) {
      EXPECT_LT(views[i].view.id.epoch, views[i + 1].view.id.epoch);
    }
  }
}

TEST(Vsync, StabilityGcBoundsBuffer) {
  Cluster c({.sites = 3});
  ASSERT_TRUE(c.await_stable_view({0, 1, 2}));
  for (int n = 0; n < 300; ++n) {
    c.rec(0).multicast(tag(0, n));
    c.world().run_for(2 * kMillisecond);
  }
  c.world().run_for(1 * kSecond);  // a few stability rounds
  EXPECT_GT(c.ep(0).stats().stability_gc_messages, 0u);
  // After quiescence + gossip, the buffers must drain completely.
  ASSERT_TRUE(c.await([&]() {
    for (std::size_t i = 0; i < 3; ++i) {
      if (c.ep(i).buffer_size() != 0) return false;
    }
    return true;
  }));
}

TEST(Vsync, GcDisabledKeepsAllMessagesBuffered) {
  ClusterOptions opt{.sites = 2};
  opt.endpoint.stability_interval = 0;
  Cluster c(opt);
  ASSERT_TRUE(c.await_stable_view({0, 1}));
  for (int n = 0; n < 50; ++n) c.rec(0).multicast(tag(0, n));
  c.world().run_for(2 * kSecond);
  EXPECT_GE(c.ep(0).stats().buffer_peak, 50u);
  EXPECT_EQ(c.ep(0).stats().stability_gc_messages, 0u);
}

TEST(Vsync, ContextsTravelWithInstall) {
  Cluster c({.sites = 3});
  ASSERT_TRUE(c.await_stable_view({0, 1, 2}));
  // The final (merged) view must carry one context per member.
  const auto& views = c.rec(0).views();
  ASSERT_FALSE(views.empty());
  const auto& last = views.back();
  EXPECT_EQ(last.contexts.size(), last.view.members.size());
}

TEST(Vsync, MessageLossDoesNotViolateProperties) {
  ClusterOptions opt{.sites = 3, .seed = 31};
  opt.net.loss_rate = 0.05;
  Cluster c(opt);
  ASSERT_TRUE(c.await_stable_view({0, 1, 2}, 120 * kSecond));
  for (int n = 0; n < 30; ++n) {
    c.rec(0).multicast(tag(0, n));
    c.rec(1).multicast(tag(1, n));
    c.world().run_for(10 * kMillisecond);
  }
  c.world().run_for(5 * kSecond);
  EXPECT_TRUE(check_vs_properties(recorder_ptrs(c.all_recorders())));
}

// Property suite: random fault schedules, many seeds. The oracles check
// Agreement / Uniqueness / Integrity over the complete histories.
class VsyncRandomFaults : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VsyncRandomFaults, PropertiesHoldUnderRandomSchedule) {
  const std::uint64_t seed = GetParam();
  Cluster c({.sites = 5, .seed = seed});
  ASSERT_TRUE(c.await_stable_view(c.all_indices()));

  sim::Rng rng(seed * 1000003);
  sim::FaultProfile profile;
  profile.mean_interval = 800 * kMillisecond;
  const SimTime horizon = c.world().scheduler().now() + 8 * kSecond;
  auto plan = sim::random_fault_plan(rng, c.sites(), horizon, profile);
  plan.arm(c.world());

  // Application traffic from whoever is alive, all through the run.
  int n = 0;
  while (c.world().scheduler().now() < horizon) {
    for (std::size_t i = 0; i < 5; ++i) {
      if (c.world().site_alive(c.site(i))) c.rec(i).multicast(tag(i, n));
    }
    ++n;
    c.world().run_for(100 * kMillisecond);
  }
  c.world().network().heal();
  c.world().run_for(5 * kSecond);
  EXPECT_TRUE(check_vs_properties(recorder_ptrs(c.all_recorders())));
}

INSTANTIATE_TEST_SUITE_P(Seeds, VsyncRandomFaults,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace evs::test
