// Malformed-frame corpus: every decode path must turn hostile bytes into
// a clean DecodeError — never UB, never a crash, never corrupted protocol
// state. The CI ASan/UBSan job runs this same corpus, so an out-of-bounds
// read in any decoder fails loudly there.
//
// Three attack shapes, all deterministic (seeded):
//   - truncation: every strict prefix of a valid frame,
//   - bit flips: 1..8 random flipped bits in a valid frame,
//   - garbage: uniformly random buffers.
// Each shape runs through the raw gms decode switch, the net datagram
// header parser, and a live vsync endpoint (which must count the frame as
// discarded and keep its view intact).
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <random>
#include <utility>
#include <vector>

#include "codec/codec.hpp"
#include "gms/wire.hpp"
#include "log/log_shard.hpp"
#include "net/datagram.hpp"
#include "objects/parallel_db.hpp"
#include "support/cluster.hpp"
#include "svc/protocol.hpp"

namespace evs::test {
namespace {

ProcessId pid(std::uint32_t site, std::uint32_t inc = 1) {
  return ProcessId{SiteId{site}, inc};
}

gms::View sample_view() {
  gms::View view;
  view.id = ViewId{7, pid(1)};
  view.members = {pid(1), pid(2), pid(3)};
  return view;
}

std::vector<gms::FlushedMessage> sample_unstable() {
  return {
      {pid(2), 11, Bytes{0xde, 0xad}},
      {pid(3), 12, Bytes{}},
  };
}

Bytes membership_frame(gms::MembershipKind kind, const auto& msg) {
  Encoder body;
  body.put_u8(static_cast<std::uint8_t>(kind));
  msg.encode(body);
  return gms::frame(gms::Channel::Membership, std::move(body));
}

/// One valid frame per channel / membership kind — the corpus seeds.
std::vector<Bytes> corpus() {
  std::vector<Bytes> frames;
  frames.push_back(gms::frame(gms::Channel::Heartbeat, Encoder{}));
  frames.push_back(gms::frame(gms::Channel::Leave, Encoder{}));

  gms::Propose propose;
  propose.round = gms::RoundId{9, pid(1)};
  propose.members = {pid(1), pid(2), pid(3)};
  frames.push_back(membership_frame(gms::MembershipKind::Propose, propose));

  gms::Ack ack;
  ack.round = gms::RoundId{9, pid(1)};
  ack.prior_view = ViewId{6, pid(2)};
  ack.max_number_seen = 8;
  ack.unstable = sample_unstable();
  ack.context = Bytes{1, 2, 3, 4};
  frames.push_back(membership_frame(gms::MembershipKind::Ack, ack));

  gms::Install install;
  install.round = gms::RoundId{9, pid(1)};
  install.view = sample_view();
  install.contexts = {{pid(2), ViewId{6, pid(2)}, Bytes{5, 6}}};
  install.unions = {{ViewId{6, pid(2)}, sample_unstable()}};
  frames.push_back(membership_frame(gms::MembershipKind::Install, install));

  gms::Nack nack;
  nack.round = gms::RoundId{9, pid(1)};
  nack.max_number_seen = 31;
  frames.push_back(membership_frame(gms::MembershipKind::Nack, nack));

  gms::DataMsg data;
  data.view = ViewId{7, pid(1)};
  data.seq = 42;
  data.payload = Bytes{'h', 'i'};
  Encoder data_body;
  data.encode(data_body);
  frames.push_back(gms::frame(gms::Channel::Data, std::move(data_body)));

  gms::StabilityMsg stab;
  stab.view = ViewId{7, pid(1)};
  stab.delivered_upto = {4, 0, 9};
  Encoder stab_body;
  stab.encode(stab_body);
  frames.push_back(gms::frame(gms::Channel::Stability, std::move(stab_body)));

  return frames;
}

/// Full decode through the same dispatch the endpoint uses. Returns true
/// when the bytes parsed as a complete frame; throws only DecodeError.
bool decode_frame(const Bytes& bytes) {
  Decoder dec(bytes);
  switch (gms::peek_channel(dec)) {
    case gms::Channel::Heartbeat:
    case gms::Channel::Leave:
      break;
    case gms::Channel::Membership:
      switch (static_cast<gms::MembershipKind>(dec.get_u8())) {
        case gms::MembershipKind::Propose:
          gms::Propose::decode(dec);
          break;
        case gms::MembershipKind::Ack:
          gms::Ack::decode(dec);
          break;
        case gms::MembershipKind::Install:
          gms::Install::decode(dec);
          break;
        case gms::MembershipKind::Nack:
          gms::Nack::decode(dec);
          break;
        default:
          throw DecodeError("unknown membership kind");
      }
      break;
    case gms::Channel::Data:
      gms::DataMsg::decode(dec);
      break;
    case gms::Channel::Stability:
      gms::StabilityMsg::decode(dec);
      break;
  }
  return true;
}

/// The property under test: hostile bytes either parse or raise
/// DecodeError. Anything else (other exception, sanitizer abort) fails.
void expect_clean_decode(const Bytes& bytes) {
  try {
    decode_frame(bytes);
  } catch (const DecodeError&) {
    // Expected for malformed input.
  }
}

TEST(MalformedFrame, CorpusSeedsAreValid) {
  for (const Bytes& frame : corpus()) EXPECT_TRUE(decode_frame(frame));
}

TEST(MalformedFrame, EveryTruncationDecodesCleanly) {
  for (const Bytes& frame : corpus()) {
    for (std::size_t len = 0; len < frame.size(); ++len) {
      const Bytes prefix(frame.begin(), frame.begin() + len);
      expect_clean_decode(prefix);
    }
  }
}

TEST(MalformedFrame, BitFlipsDecodeCleanly) {
  std::mt19937_64 rng(0xE55ULL ^ 0xC0FFEE);
  for (const Bytes& frame : corpus()) {
    if (frame.size() < 2) continue;
    for (int round = 0; round < 400; ++round) {
      Bytes mutated = frame;
      std::uniform_int_distribution<int> flips(1, 8);
      const int n = flips(rng);
      for (int i = 0; i < n; ++i) {
        std::uniform_int_distribution<std::size_t> pos(0, mutated.size() - 1);
        std::uniform_int_distribution<int> bit(0, 7);
        mutated[pos(rng)] ^= static_cast<std::uint8_t>(1 << bit(rng));
      }
      expect_clean_decode(mutated);
    }
  }
}

TEST(MalformedFrame, RandomGarbageDecodesCleanly) {
  std::mt19937_64 rng(20260807);
  for (int round = 0; round < 4000; ++round) {
    std::uniform_int_distribution<std::size_t> len_dist(0, 96);
    Bytes garbage(len_dist(rng));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng());
    expect_clean_decode(garbage);
  }
}

TEST(MalformedFrame, DatagramHeaderRejectsGarbage) {
  std::mt19937_64 rng(1996);
  // Every truncation of a valid header parses to nullopt, never UB.
  std::uint8_t header[net::kHeaderSize];
  net::encode_header(net::DatagramHeader{pid(3), 2}, header);
  ASSERT_TRUE(net::parse_header(header, sizeof(header)).has_value());
  for (std::size_t len = 0; len < sizeof(header); ++len)
    EXPECT_FALSE(net::parse_header(header, len).has_value());
  // Random buffers must not parse unless they fake the magic exactly.
  for (int round = 0; round < 2000; ++round) {
    std::uint8_t buf[net::kHeaderSize];
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng());
    const auto parsed = net::parse_header(buf, sizeof(buf));
    if (parsed) {
      EXPECT_EQ(buf[0], static_cast<std::uint8_t>(net::kDatagramMagic & 0xff));
    }
  }
}

TEST(MalformedFrame, DatagramMagicVersioningIsAHardCut) {
  // The v3 envelope: both current magics parse (with the trace context
  // intact), every retired magic is rejected — a mixed-version fleet must
  // fail loudly, not mis-frame.
  std::uint8_t header[net::kHeaderSize];
  const net::DatagramHeader h{pid(3, 2), 5, 7, 0xabcdef0123456789ull,
                              /*coalesced=*/false};
  net::encode_header(h, header);
  EXPECT_EQ(header[0], static_cast<std::uint8_t>(net::kDatagramMagic & 0xff));
  auto parsed = net::parse_header(header, sizeof(header));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, h);

  net::DatagramHeader batch = h;
  batch.coalesced = true;
  net::encode_header(batch, header);
  EXPECT_EQ(header[0],
            static_cast<std::uint8_t>(net::kDatagramMagicBatch & 0xff));
  parsed = net::parse_header(header, sizeof(header));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->coalesced);
  EXPECT_EQ(parsed->trace, h.trace);

  for (const std::uint32_t old_magic :
       {net::kDatagramMagicV1, net::kDatagramMagicBatchV1,
        net::kDatagramMagicV2, net::kDatagramMagicBatchV2}) {
    net::encode_header(h, header);
    header[0] = static_cast<std::uint8_t>(old_magic);
    header[1] = static_cast<std::uint8_t>(old_magic >> 8);
    header[2] = static_cast<std::uint8_t>(old_magic >> 16);
    header[3] = static_cast<std::uint8_t>(old_magic >> 24);
    EXPECT_FALSE(net::parse_header(header, sizeof(header)).has_value())
        << "magic " << old_magic;
  }
}

// --- Coalesced-datagram sub-frame format (net/datagram.hpp) ---

/// Packs frames into one coalesced payload: [u32 LE len][frame]...
Bytes coalesce_payload(const std::vector<Bytes>& frames) {
  Bytes payload;
  for (const Bytes& frame : frames) {
    const auto len = static_cast<std::uint32_t>(frame.size());
    payload.push_back(static_cast<std::uint8_t>(len));
    payload.push_back(static_cast<std::uint8_t>(len >> 8));
    payload.push_back(static_cast<std::uint8_t>(len >> 16));
    payload.push_back(static_cast<std::uint8_t>(len >> 24));
    payload.insert(payload.end(), frame.begin(), frame.end());
  }
  return payload;
}

/// The split invariant: either the whole payload parses into in-bounds,
/// contiguous, non-empty spans, or it is rejected with `out` cleared.
void expect_clean_split(const Bytes& payload) {
  std::vector<std::pair<std::size_t, std::size_t>> spans;
  const bool ok =
      net::split_subframes(payload.data(), payload.size(), spans);
  if (!ok) {
    EXPECT_TRUE(spans.empty());
    return;
  }
  ASSERT_FALSE(spans.empty());
  std::size_t expect_offset = net::kSubFramePrefix;
  for (const auto& [offset, length] : spans) {
    EXPECT_EQ(offset, expect_offset);
    EXPECT_GE(length, 1u);
    ASSERT_LE(offset + length, payload.size());
    // Each recovered sub-frame feeds the same decoder the endpoint uses;
    // hostile contents must still only ever raise DecodeError.
    expect_clean_decode(
        Bytes(payload.begin() + static_cast<long>(offset),
              payload.begin() + static_cast<long>(offset + length)));
    expect_offset = offset + length + net::kSubFramePrefix;
  }
  // Full coverage: the last span ends exactly at the payload end.
  EXPECT_EQ(spans.back().first + spans.back().second, payload.size());
}

TEST(MalformedFrame, SubframeRoundTripRecoversCorpus) {
  const std::vector<Bytes> frames = corpus();
  const Bytes payload = coalesce_payload(frames);
  std::vector<std::pair<std::size_t, std::size_t>> spans;
  ASSERT_TRUE(net::split_subframes(payload.data(), payload.size(), spans));
  ASSERT_EQ(spans.size(), frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    const auto& [offset, length] = spans[i];
    EXPECT_EQ(Bytes(payload.begin() + static_cast<long>(offset),
                    payload.begin() + static_cast<long>(offset + length)),
              frames[i]);
  }
}

TEST(MalformedFrame, SubframeTruncationIsAllOrNothing) {
  // Every strict prefix of a coalesced payload either ends exactly on a
  // sub-frame boundary (a valid, shorter sequence) or rejects outright —
  // a truncated final sub-frame must never deliver its intact siblings.
  const std::vector<Bytes> frames = corpus();
  const Bytes payload = coalesce_payload(frames);
  std::vector<std::size_t> boundaries;
  std::size_t at = 0;
  for (const Bytes& frame : frames) {
    at += net::kSubFramePrefix + frame.size();
    boundaries.push_back(at);
  }
  for (std::size_t len = 0; len < payload.size(); ++len) {
    std::vector<std::pair<std::size_t, std::size_t>> spans;
    const bool ok = net::split_subframes(payload.data(), len, spans);
    const bool on_boundary =
        std::find(boundaries.begin(), boundaries.end(), len) !=
        boundaries.end();
    EXPECT_EQ(ok, on_boundary && len > 0) << "prefix length " << len;
    expect_clean_split(Bytes(payload.begin(),
                             payload.begin() + static_cast<long>(len)));
  }
}

TEST(MalformedFrame, SubframeBitFlipsSplitCleanly) {
  // Bit flips landing in a length prefix produce garbage lengths (zero,
  // overlong, just-past-the-end); the split must reject or stay in
  // bounds, never read past the payload.
  std::mt19937_64 rng(0xBADC0DE);
  const Bytes payload = coalesce_payload(corpus());
  for (int round = 0; round < 2000; ++round) {
    Bytes mutated = payload;
    std::uniform_int_distribution<int> flips(1, 8);
    const int n = flips(rng);
    for (int i = 0; i < n; ++i) {
      std::uniform_int_distribution<std::size_t> pos(0, mutated.size() - 1);
      std::uniform_int_distribution<int> bit(0, 7);
      mutated[pos(rng)] ^= static_cast<std::uint8_t>(1 << bit(rng));
    }
    expect_clean_split(mutated);
  }
}

TEST(MalformedFrame, SubframeGarbageSplitsCleanly) {
  std::mt19937_64 rng(0x5EEDF00D);
  for (int round = 0; round < 4000; ++round) {
    std::uniform_int_distribution<std::size_t> len_dist(0, 128);
    Bytes garbage(len_dist(rng));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng());
    expect_clean_split(garbage);
  }
  // Targeted garbage lengths: zero, max-u32 and one-past-the-end.
  for (const std::uint32_t evil : {0u, 0xffffffffu, 5u}) {
    Bytes payload = coalesce_payload({Bytes{1, 2, 3, 4}});
    payload[0] = static_cast<std::uint8_t>(evil);
    payload[1] = static_cast<std::uint8_t>(evil >> 8);
    payload[2] = static_cast<std::uint8_t>(evil >> 16);
    payload[3] = static_cast<std::uint8_t>(evil >> 24);
    std::vector<std::pair<std::size_t, std::size_t>> spans;
    EXPECT_FALSE(net::split_subframes(payload.data(), payload.size(), spans))
        << "length " << evil;
    EXPECT_TRUE(spans.empty());
  }
}

// --- External-client svc wire protocol (svc/protocol.hpp) ---
//
// The front door faces arbitrary internet clients, so its decoders get
// the same three attack shapes as the member-to-member wire: truncation,
// bit flips, and raw garbage, against every request/response variant.

/// One valid body per request op and response status — the svc corpus.
std::vector<Bytes> svc_corpus() {
  using runtime::SvcOp;
  using runtime::SvcRequest;
  using runtime::SvcResponse;
  std::vector<Bytes> bodies;
  std::uint64_t id = 1000;
  const auto req = [&](SvcOp op, std::uint64_t epoch, std::string key = {},
                       std::string value = {}, std::uint64_t trace_id = 0,
                       bool sampled = false) {
    SvcRequest r;
    r.op = op;
    r.view_epoch = epoch;
    r.key = std::move(key);
    r.value = std::move(value);
    r.trace_id = trace_id;
    r.sampled = sampled;
    bodies.push_back(svc::encode_request(++id, r));
  };
  // A sampled trace context rides two of the seeds, so the truncation and
  // bit-flip shapes also sweep across the trace_id/trace_flags bytes.
  req(SvcOp::Get, 7, "some-key", "", 0x1122334455667788ull, true);
  req(SvcOp::Put, 42, "k", "a value with some length to flip bits in");
  req(SvcOp::Lock, 3, "", "", 0xfeedfacefeedfaceull, true);
  req(SvcOp::Unlock, 3);
  req(SvcOp::Append, 0, "", "appended tail");
  bodies.push_back(svc::encode_response(++id, SvcResponse::ok(9, "value")));
  bodies.push_back(svc::encode_response(++id, SvcResponse::conflict(250)));
  bodies.push_back(svc::encode_response(++id, SvcResponse::invalid_epoch(10)));
  bodies.push_back(svc::encode_response(++id, SvcResponse::unavailable(50)));
  bodies.push_back(svc::encode_response(++id, SvcResponse::unsupported()));
  return bodies;
}

/// Hostile svc bytes must parse (as a request or a response) or raise
/// DecodeError — both decoders run because a fuzzed body's origin is
/// exactly what a confused or malicious client gets wrong.
void expect_clean_svc_decode(const Bytes& body) {
  try {
    svc::decode_request(body);
  } catch (const DecodeError&) {
  }
  try {
    svc::decode_response(body);
  } catch (const DecodeError&) {
  }
}

TEST(MalformedFrame, SvcCorpusSeedsAreValid) {
  const std::vector<Bytes> bodies = svc_corpus();
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_NO_THROW(svc::decode_request(bodies[i])) << i;
  for (std::size_t i = 5; i < bodies.size(); ++i)
    EXPECT_NO_THROW(svc::decode_response(bodies[i])) << i;
}

TEST(MalformedFrame, SvcEveryTruncationDecodesCleanly) {
  for (const Bytes& body : svc_corpus()) {
    for (std::size_t len = 0; len < body.size(); ++len)
      expect_clean_svc_decode(Bytes(body.begin(), body.begin() + len));
  }
}

TEST(MalformedFrame, SvcBitFlipsDecodeCleanly) {
  std::mt19937_64 rng(0x57C0DE);
  for (const Bytes& body : svc_corpus()) {
    for (int round = 0; round < 400; ++round) {
      Bytes mutated = body;
      std::uniform_int_distribution<int> flips(1, 8);
      const int n = flips(rng);
      for (int i = 0; i < n; ++i) {
        std::uniform_int_distribution<std::size_t> pos(0, mutated.size() - 1);
        std::uniform_int_distribution<int> bit(0, 7);
        mutated[pos(rng)] ^= static_cast<std::uint8_t>(1 << bit(rng));
      }
      expect_clean_svc_decode(mutated);
    }
  }
}

TEST(MalformedFrame, SvcRandomGarbageDecodesCleanly) {
  std::mt19937_64 rng(0xF40D);
  for (int round = 0; round < 4000; ++round) {
    std::uniform_int_distribution<std::size_t> len_dist(0, 96);
    Bytes garbage(len_dist(rng));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng());
    expect_clean_svc_decode(garbage);
  }
}

TEST(MalformedFrame, SvcTraceContextRoundTripsAndBadFlagsReject) {
  using runtime::SvcOp;
  using runtime::SvcRequest;
  // Round trip: trace id and the sampled flag survive the codec.
  SvcRequest r;
  r.op = SvcOp::Lock;
  r.view_epoch = 3;
  r.trace_id = 0xabcdef0123456789ull;
  r.sampled = true;
  const Bytes body = svc::encode_request(55, r);
  const svc::WireRequest back = svc::decode_request(body);
  EXPECT_EQ(back.request_id, 55u);
  EXPECT_EQ(back.req.trace_id, r.trace_id);
  EXPECT_TRUE(back.req.sampled);

  // A Lock request carries nothing after the trace flags, so the flags
  // byte is the body's last; every unknown flag bit must be rejected
  // (forward-compat: old servers fail loudly on flags they cannot honour).
  for (int bit = 1; bit < 8; ++bit) {
    Bytes tampered = body;
    tampered.back() |= static_cast<std::uint8_t>(1 << bit);
    EXPECT_THROW(svc::decode_request(tampered), DecodeError) << "bit " << bit;
  }
  // Truncating anywhere inside the 9 trace bytes decodes cleanly.
  for (std::size_t cut = body.size() - 9; cut < body.size(); ++cut)
    expect_clean_svc_decode(Bytes(body.begin(), body.begin() + cut));

  // An unsampled request encodes flag byte 0 and decodes unsampled.
  r.sampled = false;
  r.trace_id = 0;
  const svc::WireRequest plain = svc::decode_request(svc::encode_request(56, r));
  EXPECT_EQ(plain.req.trace_id, 0u);
  EXPECT_FALSE(plain.req.sampled);
}

TEST(MalformedFrame, SvcFramingNeverReadsPastOrStalls) {
  // Garbage length prefixes: zero and over-cap must be Malformed (drop
  // the connection), in-cap short reads must be NeedMore, and a frame
  // extracted must exactly match what append_frame wrote.
  std::string buf;
  const Bytes body = svc_corpus().front();
  svc::append_frame(buf, body);
  std::size_t offset = 0;
  Bytes out;
  ASSERT_EQ(svc::next_frame(buf, offset, out), svc::FrameStatus::Frame);
  EXPECT_EQ(out, body);

  std::mt19937_64 rng(0xF4A3E);
  for (int round = 0; round < 2000; ++round) {
    std::string mutated = buf;
    std::uniform_int_distribution<std::size_t> pos(0, mutated.size() - 1);
    mutated[pos(rng)] ^= static_cast<char>(1 << (rng() % 8));
    std::size_t off = 0;
    Bytes extracted;
    // Any verdict is fine; the property is bounded reads and no throw.
    while (off < mutated.size() &&
           svc::next_frame(mutated, off, extracted) ==
               svc::FrameStatus::Frame) {
    }
  }
  for (const std::uint32_t evil : {0u, 0xffffffffu, 0x10001u}) {
    std::string evil_buf;
    evil_buf.push_back(static_cast<char>(evil));
    evil_buf.push_back(static_cast<char>(evil >> 8));
    evil_buf.push_back(static_cast<char>(evil >> 16));
    evil_buf.push_back(static_cast<char>(evil >> 24));
    evil_buf += "payload";
    std::size_t off = 0;
    Bytes extracted;
    EXPECT_EQ(svc::next_frame(evil_buf, off, extracted),
              svc::FrameStatus::Malformed)
        << evil;
  }
}

// A live endpoint fed undecodable bytes must count them as discarded and
// keep functioning — state isolation, not just memory safety.
TEST(MalformedFrame, EndpointDiscardsAndStaysLive) {
  Cluster c({.sites = 2});
  ASSERT_TRUE(c.await_stable_view({0, 1}));
  const ProcessId peer = c.world().live_process(c.site(1));

  std::mt19937_64 rng(7);
  std::uint64_t injected = 0;
  auto inject = [&](const Bytes& bytes) {
    // Only inject bytes that are provably undecodable so the discard
    // counter must move and no protocol transition can fire.
    try {
      decode_frame(bytes);
      return;
    } catch (const DecodeError&) {
    }
    c.ep(0).on_message(peer, bytes);
    ++injected;
  };

  for (const Bytes& frame : corpus()) {
    for (std::size_t len = 1; len < frame.size(); ++len)
      inject(Bytes(frame.begin(), frame.begin() + len));
    for (int round = 0; round < 50; ++round) {
      Bytes mutated = frame;
      if (mutated.empty()) continue;
      std::uniform_int_distribution<std::size_t> pos(0, mutated.size() - 1);
      mutated[pos(rng)] ^= 0xff;
      inject(mutated);
    }
  }
  ASSERT_GT(injected, 0u);
  EXPECT_EQ(c.ep(0).stats().messages_discarded, injected);

  // The group must still be able to change views after the bombardment.
  const ViewId before = c.ep(0).view().id;
  c.world().crash_site(c.site(1));
  ASSERT_TRUE(c.await_stable_view({0}));
  EXPECT_NE(c.ep(0).view().id, before);
}

// ---------------------------------------------------------------------
// Object snapshot decoders. The settle engine installs whatever snapshot
// the classification hands it (and, behind a durable store, whatever a
// crashed process left on disk), so install_state / merge_cluster_states
// face torn and bit-flipped bytes exactly like the wire decoders: the
// contract is DecodeError-or-success with the object state untouched on
// rejection — never a crash, never a half-installed object.

struct FuzzLogShard : log::LogShard {
  using log::LogShard::LogShard;
  using log::LogShard::install_state;
  using log::LogShard::merge_cluster_states;
  using log::LogShard::snapshot_state;
};

struct FuzzParallelDb : objects::ParallelDb {
  using objects::ParallelDb::install_state;
  using objects::ParallelDb::merge_cluster_states;
  using objects::ParallelDb::ParallelDb;
  using objects::ParallelDb::snapshot_state;
};

FuzzLogShard make_shard() { return FuzzLogShard(log::LogShardConfig{}); }
FuzzParallelDb make_db() { return FuzzParallelDb(app::GroupObjectConfig{}); }

/// A populated LogShard snapshot, hand-encoded in the wire format
/// (version, next_local, trim_floor, sealed_epoch, slot count, slots).
Bytes shard_seed() {
  Encoder enc;
  enc.put_varint(17);  // version
  enc.put_varint(6);   // next_local
  enc.put_varint(2);   // trim_floor
  enc.put_varint(1);   // sealed_epoch
  enc.put_varint(4);   // slots
  for (std::uint64_t local = 2; local < 6; ++local) {
    enc.put_varint(local);
    enc.put_u8(local == 3 ? 1 : 0);  // one filled hole
    enc.put_string(local == 3 ? "" : "rec" + std::to_string(local));
  }
  return std::move(enc).take();
}

/// A populated ParallelDb snapshot (version, entry count, entries).
Bytes db_seed() {
  Encoder enc;
  enc.put_varint(9);
  enc.put_varint(3);
  for (const char* key : {"alpha", "beta", "gamma"}) {
    enc.put_string(key);
    enc.put_string(std::string("value-of-") + key);
  }
  return std::move(enc).take();
}

/// Installs `snapshot` into a fresh object; on DecodeError asserts the
/// object is still bit-identical to a never-touched one (no partial
/// mutation). Returns whether the install was accepted.
template <typename MakeObject>
bool install_or_reject(MakeObject make, const Bytes& snapshot) {
  auto obj = make();
  const Bytes before = obj.snapshot_state();
  try {
    obj.install_state(snapshot);
    return true;
  } catch (const DecodeError&) {
    EXPECT_EQ(obj.snapshot_state(), before)
        << "rejected snapshot left a partial install behind";
    return false;
  }
}

TEST(MalformedSnapshot, SeedsInstallAndRoundTrip) {
  auto shard = make_shard();
  shard.install_state(shard_seed());
  EXPECT_EQ(shard.local_tail(), 6u);
  EXPECT_EQ(shard.trim_floor(), 2u);
  EXPECT_EQ(shard.records(), 4u);
  EXPECT_EQ(shard.snapshot_state(), shard_seed());

  auto db = make_db();
  db.install_state(db_seed());
  EXPECT_EQ(db.size(), 3u);
  EXPECT_EQ(db.get("beta"), "value-of-beta");
  EXPECT_EQ(db.snapshot_state(), db_seed());
}

TEST(MalformedSnapshot, EveryTruncationRejectsCleanly) {
  const Bytes shard_full = shard_seed();
  for (std::size_t len = 0; len < shard_full.size(); ++len)
    EXPECT_FALSE(install_or_reject(
        make_shard, Bytes(shard_full.begin(), shard_full.begin() + len)))
        << "truncation to " << len << "B installed";
  const Bytes db_full = db_seed();
  for (std::size_t len = 0; len < db_full.size(); ++len)
    EXPECT_FALSE(install_or_reject(
        make_db, Bytes(db_full.begin(), db_full.begin() + len)))
        << "truncation to " << len << "B installed";
}

TEST(MalformedSnapshot, BitFlipsRejectOrInstallAtomically) {
  std::mt19937_64 rng(0x5709);
  for (const Bytes& seed : {shard_seed(), db_seed()}) {
    const bool is_shard = seed == shard_seed();
    for (int round = 0; round < 600; ++round) {
      Bytes mutated = seed;
      std::uniform_int_distribution<int> flips(1, 8);
      const int n = flips(rng);
      for (int i = 0; i < n; ++i) {
        std::uniform_int_distribution<std::size_t> pos(0, mutated.size() - 1);
        std::uniform_int_distribution<int> bit(0, 7);
        mutated[pos(rng)] ^= static_cast<std::uint8_t>(1 << bit(rng));
      }
      // Either a clean install of whatever the flip means, or a clean
      // reject with the object untouched — install_or_reject asserts it.
      if (is_shard)
        install_or_reject(make_shard, mutated);
      else
        install_or_reject(make_db, mutated);
    }
  }
}

TEST(MalformedSnapshot, RandomGarbageRejectsCleanly) {
  std::mt19937_64 rng(0xBAD5EED);
  for (int round = 0; round < 2000; ++round) {
    std::uniform_int_distribution<std::size_t> len_dist(0, 128);
    Bytes garbage(len_dist(rng));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng());
    install_or_reject(make_shard, garbage);
    install_or_reject(make_db, garbage);
  }
}

TEST(MalformedSnapshot, MergeRejectsCorruptCandidates) {
  // A truncated or flipped candidate must fail the merge with a
  // DecodeError (counted as snapshot_decode_errors upstream) — it must
  // never win the merge and poison the subsequent install.
  std::mt19937_64 rng(0x4D454747);
  for (int round = 0; round < 400; ++round) {
    for (const bool is_shard : {true, false}) {
      const Bytes good = is_shard ? shard_seed() : db_seed();
      Bytes bad = good;
      std::uniform_int_distribution<int> mode(0, 1);
      if (mode(rng) == 0 && bad.size() > 1) {
        std::uniform_int_distribution<std::size_t> cut(0, bad.size() - 1);
        bad.resize(cut(rng));
      } else {
        std::uniform_int_distribution<std::size_t> pos(0, bad.size() - 1);
        bad[pos(rng)] ^= 0xff;
      }
      try {
        if (is_shard) {
          auto shard = make_shard();
          const Bytes merged = shard.merge_cluster_states({good, bad});
          EXPECT_TRUE(install_or_reject(make_shard, merged))
              << "merge produced an uninstallable winner";
        } else {
          auto db = make_db();
          const Bytes merged = db.merge_cluster_states({good, bad});
          EXPECT_TRUE(install_or_reject(make_db, merged))
              << "merge produced an uninstallable winner";
        }
      } catch (const DecodeError&) {
        // The corrupt candidate was detected — the counted-error path.
      }
    }
  }
}

TEST(MalformedSnapshot, MergeOfNothingThrows) {
  auto shard = make_shard();
  EXPECT_THROW(shard.merge_cluster_states({}), DecodeError);
  auto db = make_db();
  // ParallelDb's union-merge of zero candidates is legitimately empty.
  const Bytes merged = db.merge_cluster_states({});
  EXPECT_TRUE(install_or_reject(make_db, merged));
}

}  // namespace
}  // namespace evs::test
