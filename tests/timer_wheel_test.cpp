// Unit tests for the hierarchical timer wheel (net/timer_wheel.hpp).
//
// The wheel replaced the event loop's binary heap, so the contract under
// test is the heap's: strict (deadline, insertion-seq) firing order at
// microsecond deadlines, O(1)-bounded storage under set/cancel churn,
// and correct cascading for deadlines far enough out to live in the
// coarse levels. The wheel is driven with synthetic `now` values — no
// sleeping, every cascade is forced by jumping time.

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <random>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "net/timer_wheel.hpp"

namespace evs::net {
namespace {

using Entry = TimerWheel::Entry;

constexpr SimTime kTick = SimTime{1} << TimerWheel::kTickBits;

std::vector<runtime::TimerId> collect_ids(TimerWheel& wheel, SimTime now) {
  std::vector<Entry> due;
  wheel.collect_due(now, due);
  std::vector<runtime::TimerId> ids;
  ids.reserve(due.size());
  for (const Entry& entry : due) ids.push_back(entry.id);
  return ids;
}

TEST(TimerWheel, FiresInDeadlineOrderWithSeqTieBreak) {
  // Same contract the heap enforced: deadline first, insertion sequence
  // second. Insert out of order, with a three-way tie at t=5000.
  TimerWheel wheel;
  wheel.insert(/*deadline=*/5000, /*seq=*/2, /*id=*/12);
  wheel.insert(9000, 1, 11);
  wheel.insert(5000, 4, 14);
  wheel.insert(1000, 3, 13);
  wheel.insert(5000, 5, 15);

  EXPECT_EQ(collect_ids(wheel, 999), (std::vector<runtime::TimerId>{}));
  EXPECT_EQ(collect_ids(wheel, 1000), (std::vector<runtime::TimerId>{13}));
  EXPECT_EQ(collect_ids(wheel, 10000),
            (std::vector<runtime::TimerId>{12, 14, 15, 11}));
  EXPECT_TRUE(wheel.empty());
}

TEST(TimerWheel, SubTickOrderingSurvivesBucketing) {
  // Deadlines 3 µs apart land in the same 1024 µs bucket; the imminent-
  // list sort must still hand them out in exact deadline order.
  TimerWheel wheel;
  wheel.insert(103, 1, 1);
  wheel.insert(100, 2, 2);
  wheel.insert(106, 3, 3);
  EXPECT_EQ(collect_ids(wheel, 104), (std::vector<runtime::TimerId>{2, 1}));
  EXPECT_EQ(collect_ids(wheel, 200), (std::vector<runtime::TimerId>{3}));
}

TEST(TimerWheel, EraseIsExactAndIdempotent) {
  TimerWheel wheel;
  wheel.insert(1000, 1, 1);
  wheel.insert(2000, 2, 2);
  EXPECT_TRUE(wheel.erase(1));
  EXPECT_FALSE(wheel.erase(1));  // already gone
  EXPECT_FALSE(wheel.erase(99));  // never inserted
  EXPECT_EQ(wheel.size(), 1u);
  EXPECT_EQ(collect_ids(wheel, 10000), (std::vector<runtime::TimerId>{2}));
}

TEST(TimerWheel, SetCancelChurnLeavesNoResidue) {
  // The heartbeat detector's pattern: arm, cancel, re-arm, thousands of
  // times. The heap left cancelled entries behind (bounded by a purge);
  // the wheel must stay exactly at the live count.
  TimerWheel wheel;
  std::uint64_t seq = 0;
  runtime::TimerId id = 1;
  for (int round = 0; round < 5000; ++round) {
    const runtime::TimerId this_id = id++;
    wheel.insert(120'000 + round, seq++, this_id);
    ASSERT_TRUE(wheel.erase(this_id));
  }
  EXPECT_EQ(wheel.size(), 0u);
  EXPECT_TRUE(wheel.empty());
  EXPECT_FALSE(wheel.next_deadline_hint(0).has_value());
}

TEST(TimerWheel, FarFutureTimersCascadeAcrossLevels) {
  // One timer per wheel level: ~1 tick, ~100 ticks, ~10^4, ... up to a
  // deadline that must start three levels deep. Fire them by sweeping
  // time forward through every cascade boundary.
  TimerWheel wheel;
  const std::vector<SimTime> deadlines = {
      2 * kTick,            // level 0
      100 * kTick,          // level 1
      10'000 * kTick,       // level 2
      1'000'000 * kTick,    // level 3 (64^3 = 262144 < 10^6 < 64^4)
  };
  for (std::size_t i = 0; i < deadlines.size(); ++i)
    wheel.insert(deadlines[i], i, static_cast<runtime::TimerId>(i + 1));

  std::vector<runtime::TimerId> fired;
  SimTime now = 0;
  while (!wheel.empty()) {
    // Advance in uneven jumps so cascades happen at arbitrary offsets,
    // not just at neat slot boundaries.
    now += 37 * kTick + 11;
    for (const auto id : collect_ids(wheel, now)) fired.push_back(id);
    ASSERT_LT(now, SimTime{2'000'000} * kTick) << "timer never fired";
  }
  EXPECT_EQ(fired, (std::vector<runtime::TimerId>{1, 2, 3, 4}));
}

TEST(TimerWheel, FarFutureTimerNeverFiresEarly) {
  // A deadline three levels up must survive every intermediate cascade
  // without firing, then fire exactly when due.
  TimerWheel wheel;
  const SimTime deadline = 300'000 * kTick + 123;
  wheel.insert(deadline, 0, 7);
  EXPECT_EQ(collect_ids(wheel, deadline - 1),
            (std::vector<runtime::TimerId>{}));
  EXPECT_EQ(wheel.size(), 1u);
  EXPECT_EQ(collect_ids(wheel, deadline), (std::vector<runtime::TimerId>{7}));
}

TEST(TimerWheel, HintIsALowerBoundAndNeverLate) {
  // The event loop sleeps until the hint; a hint later than the true
  // deadline would make a timer fire late. Early (coarse) is allowed.
  TimerWheel wheel;
  const SimTime deadline = 5'000 * kTick + 7;  // level 1 territory
  wheel.insert(deadline, 0, 1);
  SimTime now = 0;
  for (int hops = 0; hops < 100; ++hops) {
    const auto hint = wheel.next_deadline_hint(now);
    ASSERT_TRUE(hint.has_value());
    ASSERT_LE(*hint, deadline);
    if (*hint <= now) break;  // due (or staged sub-tick): stop hopping
    now = *hint;
  }
  EXPECT_EQ(collect_ids(wheel, deadline), (std::vector<runtime::TimerId>{1}));
}

TEST(TimerWheel, MatchesReferenceModelUnderRandomChurn) {
  // Differential fuzz against a map-based reference priority queue:
  // random inserts, cancels and time jumps must produce identical firing
  // sequences. This is the heap-equivalence test in miniature.
  std::mt19937_64 rng(0xE5E5E5);
  TimerWheel wheel;
  std::map<std::pair<SimTime, std::uint64_t>, runtime::TimerId> reference;
  std::map<runtime::TimerId, std::pair<SimTime, std::uint64_t>> by_id;
  std::uint64_t seq = 0;
  runtime::TimerId next_id = 1;
  SimTime now = 0;

  for (int op = 0; op < 20'000; ++op) {
    const auto pick = rng() % 100;
    if (pick < 55) {  // insert, mostly near-term, sometimes far out
      const SimTime delay = (rng() % 10 == 0)
                                ? static_cast<SimTime>(rng() % (1 << 26))
                                : static_cast<SimTime>(rng() % 200'000);
      const SimTime deadline = now + delay;
      const runtime::TimerId id = next_id++;
      wheel.insert(deadline, seq, id);
      reference.emplace(std::make_pair(deadline, seq), id);
      by_id.emplace(id, std::make_pair(deadline, seq));
      ++seq;
    } else if (pick < 80 && !by_id.empty()) {  // cancel a random live timer
      auto it = by_id.begin();
      std::advance(it, static_cast<long>(rng() % by_id.size()));
      ASSERT_TRUE(wheel.erase(it->first));
      reference.erase(it->second);
      by_id.erase(it);
    } else {  // jump time and fire
      now += static_cast<SimTime>(rng() % 300'000);
      std::vector<Entry> due;
      wheel.collect_due(now, due);
      std::vector<runtime::TimerId> expected;
      while (!reference.empty() && reference.begin()->first.first <= now) {
        expected.push_back(reference.begin()->second);
        by_id.erase(reference.begin()->second);
        reference.erase(reference.begin());
      }
      std::vector<runtime::TimerId> got;
      got.reserve(due.size());
      for (const Entry& entry : due) got.push_back(entry.id);
      ASSERT_EQ(got, expected) << "divergence at op " << op;
    }
    ASSERT_EQ(wheel.size(), reference.size());
  }
}

TEST(TimerWheel, HintAgreesWithReferenceUnderChurn) {
  // The hint must lower-bound the true earliest deadline at every probe.
  std::mt19937_64 rng(0xC0FFEE);
  TimerWheel wheel;
  std::map<std::pair<SimTime, std::uint64_t>, runtime::TimerId> reference;
  std::uint64_t seq = 0;
  SimTime now = 0;
  for (int op = 0; op < 2'000; ++op) {
    const SimTime deadline = now + static_cast<SimTime>(rng() % (1 << 24));
    wheel.insert(deadline, seq, static_cast<runtime::TimerId>(seq + 1));
    reference.emplace(std::make_pair(deadline, seq), seq + 1);
    ++seq;
    now += static_cast<SimTime>(rng() % 50'000);
    std::vector<Entry> due;
    wheel.collect_due(now, due);
    while (!reference.empty() && reference.begin()->first.first <= now)
      reference.erase(reference.begin());
    const auto hint = wheel.next_deadline_hint(now);
    if (reference.empty()) {
      EXPECT_FALSE(hint.has_value());
    } else {
      ASSERT_TRUE(hint.has_value());
      ASSERT_LE(*hint, reference.begin()->first.first)
          << "hint overshoots the earliest deadline at op " << op;
    }
  }
}

}  // namespace
}  // namespace evs::net
