#include <gtest/gtest.h>

#include "app/history.hpp"
#include "common/check.hpp"
#include "objects/replicated_file.hpp"
#include "support/object_cluster.hpp"

namespace evs::app {
namespace {

ProcessId pid(std::uint32_t site, std::uint32_t inc = 1) {
  return ProcessId{SiteId{site}, inc};
}

gms::View make_view(std::uint64_t epoch, std::vector<ProcessId> members) {
  gms::View v;
  std::sort(members.begin(), members.end());
  v.id = ViewId{epoch, members.front()};
  v.members = std::move(members);
  return v;
}

TEST(History, RecordsEventsInOrder) {
  History h;
  h.record_view(make_view(1, {pid(0)}));
  h.record_delivery(pid(0), to_bytes("a"));
  h.record_delivery(pid(0), to_bytes("b"));
  EXPECT_EQ(h.size(), 3u);
  EXPECT_EQ(h.delivery_count(), 2u);
  EXPECT_TRUE(h.well_formed());
}

TEST(History, FirstEventMustBeTheJoinView) {
  History h;
  EXPECT_TRUE(h.well_formed());  // empty prefix
  h.record_delivery(pid(0), to_bytes("x"));
  EXPECT_FALSE(h.well_formed());
}

TEST(History, PrefixIsTheFormalHk) {
  History h;
  h.record_view(make_view(1, {pid(0)}));
  h.record_delivery(pid(0), to_bytes("a"));
  h.record_view(make_view(2, {pid(0), pid(1)}));
  const History h2 = h.prefix(2);
  EXPECT_EQ(h2.size(), 2u);
  ASSERT_TRUE(h2.current_view().has_value());
  EXPECT_EQ(h2.current_view()->id.epoch, 1u);
  // Prefix longer than the history clamps.
  EXPECT_EQ(h.prefix(99).size(), 3u);
}

TEST(History, CurrentViewIsTheLatestViewEvent) {
  History h;
  h.record_view(make_view(1, {pid(0)}));
  h.record_view(make_view(2, {pid(0), pid(1)}));
  h.record_delivery(pid(1), to_bytes("z"));
  ASSERT_TRUE(h.current_view().has_value());
  EXPECT_EQ(h.current_view()->id.epoch, 2u);
}

TEST(History, DeliveriesInCurrentViewResetOnViewEvent) {
  History h;
  h.record_view(make_view(1, {pid(0)}));
  h.record_delivery(pid(0), to_bytes("a"));
  h.record_view(make_view(2, {pid(0), pid(1)}));
  h.record_delivery(pid(1), to_bytes("b"));
  h.record_delivery(pid(0), to_bytes("c"));
  const auto in_view = h.deliveries_in_current_view();
  ASSERT_EQ(in_view.size(), 2u);
  EXPECT_EQ(evs::to_string(in_view[0].payload), "b");
  EXPECT_EQ(evs::to_string(in_view[1].payload), "c");
}

TEST(ModeFunction, QuorumShapeMatchesThePaperExample) {
  // Universe of 5; caught up after 1 delivery in the current view.
  const auto f = quorum_mode_function(5, after_deliveries(1));
  History h;
  h.record_view(make_view(1, {pid(0)}));           // singleton: no quorum
  EXPECT_EQ(f(h), Mode::Reduced);
  h.record_view(make_view(2, {pid(0), pid(1), pid(2)}));  // quorum, stale
  EXPECT_EQ(f(h), Mode::Settling);
  h.record_delivery(pid(1), to_bytes("state"));    // caught up
  EXPECT_EQ(f(h), Mode::Normal);
}

TEST(ModeFunction, AlwaysAvailableHasNoReducedMode) {
  const auto f = always_available_mode_function(after_deliveries(0));
  History h;
  h.record_view(make_view(1, {pid(0)}));
  EXPECT_EQ(f(h), Mode::Settling);  // every view change passes through S
  h.record_delivery(pid(0), to_bytes("settled"));
  EXPECT_EQ(f(h), Mode::Normal);
  h.record_view(make_view(2, {pid(0), pid(1)}));
  EXPECT_EQ(f(h), Mode::Settling);
  h.record_delivery(pid(1), to_bytes("resettled"));
  EXPECT_EQ(f(h), Mode::Normal);
  // Never REDUCED, whatever the view.
  for (std::size_t k = 1; k <= h.size(); ++k)
    EXPECT_NE(f(h.prefix(k)), Mode::Reduced);
}

TEST(ModeTrace, ReplaysTheWholePrefixSequence) {
  const auto f = quorum_mode_function(3, after_deliveries(1));
  History h;
  h.record_view(make_view(1, {pid(0)}));
  h.record_view(make_view(2, {pid(0), pid(1)}));
  h.record_delivery(pid(1), to_bytes("s"));
  const auto trace = mode_trace(h, f);
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace[0], Mode::Reduced);
  EXPECT_EQ(trace[1], Mode::Settling);
  EXPECT_EQ(trace[2], Mode::Normal);
  EXPECT_FALSE(first_illegal_transition(trace).has_value());
}

TEST(ModeTrace, RejectsIllFormedHistory) {
  History h;
  h.record_delivery(pid(0), to_bytes("x"));
  EXPECT_THROW(mode_trace(h, always_available_mode_function(
                                 after_deliveries(0))),
               InvariantViolation);
}

TEST(ModeTrace, DetectsForbiddenDirectReducedToNormal) {
  // A broken mode function jumping R -> N directly.
  const HistoryModeFunction broken = [](const History& h) {
    return h.size() % 2 == 1 ? Mode::Reduced : Mode::Normal;
  };
  History h;
  h.record_view(make_view(1, {pid(0)}));
  h.record_view(make_view(2, {pid(0), pid(1)}));
  const auto trace = mode_trace(h, broken);
  const auto bad = first_illegal_transition(trace);
  ASSERT_TRUE(bad.has_value());
  EXPECT_EQ(*bad, 1u);
}

// Integration: record the real history of a live group object and check
// the formal model agrees with what the object's machine did.
TEST(HistoryIntegration, RecordedHistoryIsWellFormedAndTraceLegal) {
  using objects::ReplicatedFile;
  using objects::ReplicatedFileConfig;
  test::ObjectCluster<ReplicatedFile, ReplicatedFileConfig> c(
      3, 55, [](const auto& u) {
        ReplicatedFileConfig cfg;
        cfg.object.endpoint.universe = u;
        cfg.object.record_history = true;
        return cfg;
      });
  ASSERT_TRUE(c.await_all_normal(c.all_indices()));
  ASSERT_TRUE(c.obj(0).write("payload"));
  c.world().run_for(1 * kSecond);
  c.world().network().set_partition({{c.site(0), c.site(1)}, {c.site(2)}});
  c.world().run_for(2 * kSecond);
  c.world().network().heal();
  ASSERT_TRUE(c.await_all_normal(c.all_indices()));

  for (std::size_t i = 0; i < 3; ++i) {
    const History& h = c.obj(i).history();
    EXPECT_TRUE(h.well_formed());
    EXPECT_GE(h.size(), 2u);  // at least join view + merged view
    // Re-derive modes with the quorum mode function (caught up instantly,
    // since history does not record settle internals): the resulting
    // trace must be Figure-1 legal, and its R positions must coincide
    // with non-quorum views.
    const auto f = quorum_mode_function(3, after_deliveries(0));
    const auto trace = mode_trace(h, f);
    EXPECT_FALSE(first_illegal_transition(trace).has_value());
    std::size_t k = 0;
    for (const HistoryEvent& e : h.events()) {
      if (const auto* v = std::get_if<ViewEvent>(&e)) {
        const bool quorum = v->view.size() * 2 > 3;
        EXPECT_EQ(trace[k] == Mode::Reduced, !quorum);
      }
      ++k;
    }
  }
}

}  // namespace
}  // namespace evs::app
