#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "sim/fault.hpp"
#include "support/evs_cluster.hpp"

namespace evs::test {
namespace {

using core::EView;
using core::EViewStructure;

std::vector<SvSetId> all_svsets(const EViewStructure& s) {
  std::vector<SvSetId> ids;
  for (const auto& ss : s.svsets()) ids.push_back(ss.id);
  return ids;
}

std::vector<SubviewId> all_subviews(const EViewStructure& s) {
  std::vector<SubviewId> ids;
  for (const auto& sv : s.subviews()) ids.push_back(sv.id);
  return ids;
}

TEST(Evs, FreshGroupIsAllSingletons) {
  EvsCluster c({.sites = 4});
  ASSERT_TRUE(c.await_stable_view(c.all_indices()));
  // New members appear as singleton subviews in singleton sv-sets
  // (Section 6.1) — so a fresh 4-view has 4 of each.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(c.ep(i).eview().structure.subviews().size(), 4u);
    EXPECT_EQ(c.ep(i).eview().structure.svsets().size(), 4u);
  }
  EXPECT_TRUE(c.structures_agree(c.all_indices()));
}

TEST(Evs, SvSetMergeConvergesEverywhere) {
  EvsCluster c({.sites = 3});
  ASSERT_TRUE(c.await_stable_view(c.all_indices()));
  c.ep(1).request_sv_set_merge(all_svsets(c.ep(1).eview().structure));
  ASSERT_TRUE(c.await([&]() {
    for (std::size_t i = 0; i < 3; ++i) {
      if (c.ep(i).eview().structure.svsets().size() != 1) return false;
    }
    return true;
  }));
  EXPECT_TRUE(c.structures_agree(c.all_indices()));
  // Subviews untouched by an sv-set merge.
  EXPECT_EQ(c.ep(0).eview().structure.subviews().size(), 3u);
}

TEST(Evs, SubviewMergeRequiresSharedSvSet) {
  EvsCluster c({.sites = 3});
  ASSERT_TRUE(c.await_stable_view(c.all_indices()));
  // Without an sv-set merge first, subviews live in different sv-sets:
  // the merge must have no effect (Section 6.1).
  c.ep(0).request_subview_merge(all_subviews(c.ep(0).eview().structure));
  c.world().run_for(2 * kSecond);
  EXPECT_EQ(c.ep(0).eview().structure.subviews().size(), 3u);
  EXPECT_GE(c.ep(0).evs_stats().merges_rejected, 1u);
}

TEST(Evs, FullMergeSequenceReachesDegenerateView) {
  // The Figure-3 sequence: merge sv-sets, then merge subviews inside the
  // resulting sv-set, ending in the traditional-view special case.
  EvsCluster c({.sites = 3});
  ASSERT_TRUE(c.await_stable_view(c.all_indices()));
  c.ep(0).request_merge_all();  // sv-set merge
  ASSERT_TRUE(c.await(
      [&]() { return c.ep(0).eview().structure.svsets().size() == 1; }));
  c.ep(0).request_merge_all();  // subview merge
  ASSERT_TRUE(c.await([&]() { return c.ep(0).eview().degenerate(); }));
  ASSERT_TRUE(c.await([&]() { return c.structures_agree(c.all_indices()); }));
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_TRUE(c.ep(i).eview().degenerate());
}

TEST(Evs, EvChangesAreTotallyOrdered) {
  // P6.1: all members observe the same sequence of e-view changes.
  EvsCluster c({.sites = 4});
  ASSERT_TRUE(c.await_stable_view(c.all_indices()));
  // Two concurrent merge requests from different members.
  const auto& s = c.ep(0).eview().structure;
  std::vector<SvSetId> first{s.svsets()[0].id, s.svsets()[1].id};
  std::vector<SvSetId> second{s.svsets()[2].id, s.svsets()[3].id};
  c.ep(1).request_sv_set_merge(first);
  c.ep(3).request_sv_set_merge(second);
  ASSERT_TRUE(c.await([&]() {
    for (std::size_t i = 0; i < 4; ++i) {
      if (c.ep(i).eview().ev_seq != 2) return false;
    }
    return true;
  }));
  // The per-member histories of (ev_seq -> structure) must be identical.
  std::map<std::uint64_t, std::string> reference;
  for (const auto& ev : c.rec(0).eviews()) {
    if (ev.ev_seq > 0) reference[ev.ev_seq] = ev.structure;
  }
  ASSERT_EQ(reference.size(), 2u);
  for (std::size_t i = 1; i < 4; ++i) {
    std::map<std::uint64_t, std::string> got;
    for (const auto& ev : c.rec(i).eviews()) {
      if (ev.ev_seq > 0) got[ev.ev_seq] = ev.structure;
    }
    EXPECT_EQ(got, reference) << "member " << i;
  }
}

TEST(Evs, ConsistentCutsP62) {
  // P6.2: e-view changes define consistent cuts. A message multicast
  // *after* its sender applied e-view change #k must never be delivered
  // *before* #k at any member. We drive this adversarially: the moment a
  // member sees an e-view change it fires a message, under heavy jitter.
  sim::NetworkConfig net;
  net.mean_jitter_us = 15'000.0;
  EvsCluster c({.sites = 4, .seed = 19, .net = net});
  ASSERT_TRUE(c.await_stable_view(c.all_indices()));

  for (int round = 0; round < 3; ++round) {
    const auto& s = c.ep(0).eview().structure;
    if (s.svsets().size() < 2) break;
    std::vector<SvSetId> pair{s.svsets()[0].id, s.svsets()[1].id};
    c.ep(2).request_sv_set_merge(pair);
    const std::uint64_t target = c.ep(0).eview().ev_seq + 1;
    ASSERT_TRUE(c.await([&]() {
      bool fired = false;
      for (std::size_t i = 0; i < 4; ++i) {
        if (c.ep(i).eview().ev_seq >= target) {
          // React instantly to the e-view change.
          c.rec(i).multicast("after-ev" + std::to_string(target) + "-from" +
                             std::to_string(i));
          fired = true;
        }
      }
      return fired;
    }));
    c.world().run_for(2 * kSecond);
  }

  // Check the cut: in every member's event log, a payload tagged
  // "after-evK" must appear after the EViewEvent with ev_seq == K.
  for (const auto& rec : c.all_recorders()) {
    std::uint64_t current_ev = 0;
    for (const auto& event : rec->events()) {
      if (const auto* v = std::get_if<EvsRecorder::EViewEvent>(&event)) {
        current_ev = v->ev_seq;
        continue;
      }
      const auto& d = std::get<EvsRecorder::DeliverEvent>(event);
      if (d.payload.rfind("after-ev", 0) != 0) continue;
      const std::uint64_t k = std::stoull(d.payload.substr(8));
      EXPECT_GE(current_ev, k)
          << to_string(rec->endpoint_id()) << " delivered '" << d.payload
          << "' before applying e-view change " << k;
    }
  }
}

TEST(Evs, StructurePreservedAcrossCrashP63) {
  EvsCluster c({.sites = 4});
  ASSERT_TRUE(c.await_stable_view(c.all_indices()));
  // Collapse to a single subview, then crash one member: survivors stay
  // in one subview (ids preserved) per Property 6.3.
  c.ep(0).request_merge_all();
  ASSERT_TRUE(c.await(
      [&]() { return c.ep(0).eview().structure.svsets().size() == 1; }));
  c.ep(0).request_merge_all();
  ASSERT_TRUE(c.await([&]() { return c.ep(0).eview().degenerate(); }));

  c.world().crash_site(c.site(3));
  ASSERT_TRUE(c.await_stable_view({0, 1, 2}));
  for (std::size_t i = 0; i < 3; ++i) {
    // The *grouping* is what P6.3 preserves (ids are view-scoped, since
    // subviews do not span view boundaries): the three survivors remain
    // together in a single subview.
    const auto& s = c.ep(i).eview().structure;
    ASSERT_EQ(s.subviews().size(), 1u);
    EXPECT_EQ(s.subviews()[0].members.size(), 3u);
    EXPECT_TRUE(c.ep(i).eview().degenerate());
  }
}

TEST(Evs, JoinerAppearsAsSingletonNextToMergedSubview) {
  EvsCluster c({.sites = 3, .spawn_all = false});
  c.spawn_at(c.site(0));
  c.spawn_at(c.site(1));
  ASSERT_TRUE(c.await_stable_view({0, 1}));
  c.ep(0).request_merge_all();
  ASSERT_TRUE(c.await(
      [&]() { return c.ep(0).eview().structure.svsets().size() == 1; }));
  c.ep(0).request_merge_all();
  ASSERT_TRUE(c.await([&]() { return c.ep(0).eview().degenerate(); }));

  c.spawn_at(c.site(2));
  ASSERT_TRUE(c.await_stable_view({0, 1, 2}));
  const auto& s = c.ep(0).eview().structure;
  // Old pair still together; newcomer alone; two sv-sets.
  ASSERT_EQ(s.subviews().size(), 2u);
  ASSERT_EQ(s.svsets().size(), 2u);
  EXPECT_EQ(s.subview_of(c.world().live_process(c.site(0))),
            s.subview_of(c.world().live_process(c.site(1))));
  const auto joiner_sv =
      s.subview_of(c.world().live_process(c.site(2)));
  ASSERT_TRUE(joiner_sv.has_value());
  EXPECT_EQ(s.find_subview(*joiner_sv)->members.size(), 1u);
}

TEST(Evs, PartitionMergeKeepsClustersApart) {
  // The Figure-2 scenario: two partitions evolve independently (each
  // collapses to one subview), then merge. The new view must contain the
  // two cluster subviews, in *separate sv-sets*, so members can classify
  // the shared-state problem locally (Section 6.2).
  EvsCluster c({.sites = 5, .seed = 21});
  ASSERT_TRUE(c.await_stable_view(c.all_indices()));
  c.world().network().set_partition(
      {{c.site(0), c.site(1)}, {c.site(2), c.site(3), c.site(4)}});
  ASSERT_TRUE(c.await_stable_view({0, 1}));
  ASSERT_TRUE(c.await_stable_view({2, 3, 4}));

  // Each side merges its own structure down to one subview.
  auto settle_side = [&](std::size_t leader,
                         const std::vector<std::size_t>& side) {
    c.ep(leader).request_merge_all();
    ASSERT_TRUE(c.await([&]() {
      return c.ep(leader).eview().structure.svsets().size() == 1;
    }));
    c.ep(leader).request_merge_all();
    ASSERT_TRUE(c.await([&]() { return c.ep(leader).eview().degenerate(); }));
    ASSERT_TRUE(c.await([&]() { return c.structures_agree(side); }));
  };
  settle_side(0, {0, 1});
  settle_side(2, {2, 3, 4});

  c.world().network().heal();
  ASSERT_TRUE(c.await_stable_view(c.all_indices()));
  const auto& s = c.ep(0).eview().structure;
  ASSERT_EQ(s.subviews().size(), 2u);
  ASSERT_EQ(s.svsets().size(), 2u);
  EXPECT_TRUE(c.structures_agree(c.all_indices()));
  // Cluster membership exactly matches the old partitions.
  const auto sv_a = s.subview_of(c.world().live_process(c.site(0)));
  const auto sv_b = s.subview_of(c.world().live_process(c.site(2)));
  ASSERT_TRUE(sv_a && sv_b);
  EXPECT_NE(*sv_a, *sv_b);
  EXPECT_EQ(s.find_subview(*sv_a)->members.size(), 2u);
  EXPECT_EQ(s.find_subview(*sv_b)->members.size(), 3u);
}

TEST(Evs, AppMulticastIsTotallyOrderedAcrossSenders) {
  sim::NetworkConfig net;
  net.mean_jitter_us = 10'000.0;
  EvsCluster c({.sites = 4, .seed = 23, .net = net});
  ASSERT_TRUE(c.await_stable_view(c.all_indices()));
  for (int r = 0; r < 15; ++r) {
    for (std::size_t i = 0; i < 4; ++i)
      c.rec(i).multicast("x" + std::to_string(i) + "-" + std::to_string(r));
    c.world().run_for(4 * kMillisecond);
  }
  c.world().run_for(5 * kSecond);
  std::vector<std::string> reference;
  for (const auto& d : c.rec(0).deliveries()) reference.push_back(d.payload);
  ASSERT_EQ(reference.size(), 60u);
  for (std::size_t i = 1; i < 4; ++i) {
    std::vector<std::string> got;
    for (const auto& d : c.rec(i).deliveries()) got.push_back(d.payload);
    EXPECT_EQ(got, reference) << "member " << i;
  }
}

TEST(Evs, AppTrafficSurvivesViewChange) {
  EvsCluster c({.sites = 3, .seed = 29});
  ASSERT_TRUE(c.await_stable_view(c.all_indices()));
  // Send while a crash-triggered view change is racing.
  for (int n = 0; n < 20; ++n) c.rec(0).multicast("pre-" + std::to_string(n));
  c.world().crash_site(c.site(2));
  for (int n = 0; n < 20; ++n) c.rec(0).multicast("mid-" + std::to_string(n));
  ASSERT_TRUE(c.await_stable_view({0, 1}));
  c.world().run_for(5 * kSecond);
  // Sender survives; both survivors must deliver all 40 exactly once.
  for (std::size_t i : {std::size_t{0}, std::size_t{1}}) {
    std::multiset<std::string> got;
    for (const auto& d : c.rec(i).deliveries()) got.insert(d.payload);
    EXPECT_EQ(got.size(), 40u) << "member " << i;
    std::set<std::string> uniq(got.begin(), got.end());
    EXPECT_EQ(uniq.size(), got.size()) << "duplicate delivery at member " << i;
  }
}

TEST(Evs, MergeRequestedDuringViewChangeIsReissued) {
  EvsCluster c({.sites = 3, .seed = 31});
  ASSERT_TRUE(c.await_stable_view(c.all_indices()));
  // Start a view change (crash), then immediately request a merge on a
  // frozen member; the request must be re-issued in the new view with
  // whatever ids still exist (here: all three sv-sets shrink to two).
  c.world().crash_site(c.site(2));
  // Find a frozen moment.
  ASSERT_TRUE(c.await([&]() { return c.ep(0).blocked(); }, 10 * kSecond,
                      1 * kMillisecond));
  c.ep(0).request_merge_all();
  ASSERT_TRUE(c.await_stable_view({0, 1}));
  c.world().run_for(5 * kSecond);
  // The queued merge-all used stale (3-wide) ids; it is allowed to be
  // rejected. But the endpoint must not wedge: a fresh merge-all works.
  c.ep(0).request_merge_all();
  ASSERT_TRUE(c.await(
      [&]() { return c.ep(0).eview().structure.svsets().size() == 1; }));
}

TEST(Evs, StructureNeverGrowsWithoutApplicationAction) {
  // Subviews/sv-sets only merge under application control: a view change
  // alone (join) must never combine existing subviews.
  EvsCluster c({.sites = 4, .spawn_all = false});
  c.spawn_at(c.site(0));
  c.spawn_at(c.site(1));
  c.spawn_at(c.site(2));
  ASSERT_TRUE(c.await_stable_view({0, 1, 2}));
  const std::size_t before = c.ep(0).eview().structure.subviews().size();
  EXPECT_EQ(before, 3u);
  c.spawn_at(c.site(3));
  ASSERT_TRUE(c.await_stable_view({0, 1, 2, 3}));
  EXPECT_EQ(c.ep(0).eview().structure.subviews().size(), 4u);
  EXPECT_EQ(c.ep(0).eview().structure.svsets().size(), 4u);
}

TEST(Evs, EvSeqResetsPerView) {
  EvsCluster c({.sites = 2});
  ASSERT_TRUE(c.await_stable_view(c.all_indices()));
  c.ep(0).request_merge_all();
  ASSERT_TRUE(c.await([&]() { return c.ep(0).eview().ev_seq == 1; }));
  c.world().crash_site(c.site(1));
  ASSERT_TRUE(c.await_stable_view({0}));
  EXPECT_EQ(c.ep(0).eview().ev_seq, 0u);
}

TEST(Evs, ContextBytesAccountedInStats) {
  EvsCluster c({.sites = 3});
  ASSERT_TRUE(c.await_stable_view(c.all_indices()));
  EXPECT_GT(c.ep(0).evs_stats().context_bytes, 0u);
}

// Property test: random crashes/partitions with periodic merge attempts;
// structures must stay valid partitions and agree within every stable view.
class EvsRandomFaults : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EvsRandomFaults, StructuresStayValidAndConsistent) {
  const std::uint64_t seed = GetParam();
  EvsCluster c({.sites = 4, .seed = seed});
  ASSERT_TRUE(c.await_stable_view(c.all_indices()));

  sim::Rng rng(seed * 7919);
  sim::FaultProfile profile;
  profile.mean_interval = 1 * kSecond;
  const SimTime horizon = c.world().scheduler().now() + 8 * kSecond;
  auto plan = sim::random_fault_plan(rng, c.sites(), horizon, profile);
  plan.arm(c.world());

  while (c.world().scheduler().now() < horizon) {
    // Whoever is alive keeps merging and chatting.
    for (std::size_t i = 0; i < 4; ++i) {
      if (!c.world().site_alive(c.site(i))) continue;
      c.rec(i).multicast("t" + std::to_string(i));
      if (rng.bernoulli(0.3)) c.ep(i).request_merge_all();
      // Structures are validated on every application inside the endpoint;
      // this re-checks from the outside.
      c.ep(i).eview().structure.validate(c.ep(i).eview().view.members);
    }
    c.world().run_for(200 * kMillisecond);
  }
  c.world().network().heal();
  ASSERT_TRUE(c.await([&]() {
    std::vector<std::size_t> alive;
    for (std::size_t i = 0; i < 4; ++i)
      if (c.world().site_alive(c.site(i))) alive.push_back(i);
    if (alive.empty()) return false;
    return c.stable_view_among(alive) && c.structures_agree(alive);
  }));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvsRandomFaults,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace evs::test
