// Unit tests for the real-socket runtime: datagram envelope, peer config
// parsing, the epoll event loop's clock/timers, and two UdpTransports
// exchanging frames over 127.0.0.1 inside one loop (including the
// drop-counting receive validation).
#include <gtest/gtest.h>

#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "net/config.hpp"
#include "net/datagram.hpp"
#include "net/event_loop.hpp"
#include "net/udp_transport.hpp"

namespace evs::net {

/// Test-only seam: lets a test invoke the socket-readable path directly
/// after sabotaging the fd, so receive-error accounting is reachable
/// without a cooperating kernel.
struct UdpTransportTestHook {
  static void inject_readable(UdpTransport& transport) {
    transport.on_readable();
  }
};

}  // namespace evs::net

namespace evs::test {
namespace {

using net::EventLoop;
using net::NodeConfig;
using net::PeerAddr;
using net::UdpTransport;

/// Binds an ephemeral UDP socket to learn a free loopback port.
std::uint16_t free_port() {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const std::uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

NodeConfig config_for(SiteId self, const std::vector<PeerAddr>& addrs,
                      std::uint32_t incarnation = 1) {
  NodeConfig config;
  config.self = self;
  config.incarnation = incarnation;
  for (std::size_t i = 0; i < addrs.size(); ++i)
    config.peers.emplace(SiteId{static_cast<std::uint32_t>(i)}, addrs[i]);
  return config;
}

TEST(Datagram, HeaderRoundTrip) {
  std::uint8_t buf[net::kHeaderSize];
  const net::DatagramHeader header{ProcessId{SiteId{5}, 3}, 9};
  net::encode_header(header, buf);
  const auto parsed = net::parse_header(buf, sizeof(buf));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->from, header.from);
  EXPECT_EQ(parsed->dest_incarnation, header.dest_incarnation);
  EXPECT_EQ(parsed->group, kDefaultGroup);
  EXPECT_FALSE(parsed->coalesced);
}

TEST(Datagram, HeaderCarriesGroupAndCoalescedFlag) {
  // The envelope stamps the group id into every datagram — the
  // multi-group demux key — independently for plain and coalesced frames.
  std::uint8_t buf[net::kHeaderSize];
  for (const bool coalesced : {false, true}) {
    const net::DatagramHeader header{.from = ProcessId{SiteId{2}, 7},
                                     .dest_incarnation = 4,
                                     .group = GroupId{3},
                                     .coalesced = coalesced};
    net::encode_header(header, buf);
    const auto parsed = net::parse_header(buf, sizeof(buf));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->from, header.from);
    EXPECT_EQ(parsed->group, GroupId{3});
    EXPECT_EQ(parsed->coalesced, coalesced);
  }
}

TEST(Datagram, RejectsV1Magics) {
  // v1 ("EVS1"/"EVSB") datagrams have no group field; a v2 node must
  // refuse them outright rather than misread 16-byte headers.
  std::uint8_t buf[net::kHeaderSize];
  net::encode_header(net::DatagramHeader{ProcessId{SiteId{1}, 1}, 0}, buf);
  for (const std::uint32_t magic :
       {net::kDatagramMagicV1, net::kDatagramMagicBatchV1}) {
    std::memcpy(buf, &magic, sizeof(magic));
    EXPECT_FALSE(net::parse_header(buf, sizeof(buf)).has_value());
    // Not even as a 16-byte (v1-sized) header.
    EXPECT_FALSE(net::parse_header(buf, 16).has_value());
  }
}

TEST(Datagram, RejectsRuntBadMagicAndZeroIncarnation) {
  std::uint8_t buf[net::kHeaderSize];
  net::encode_header(net::DatagramHeader{ProcessId{SiteId{1}, 1}, 0}, buf);
  for (std::size_t len = 0; len < sizeof(buf); ++len)
    EXPECT_FALSE(net::parse_header(buf, len).has_value());
  std::uint8_t bad_magic[net::kHeaderSize];
  std::copy(buf, buf + sizeof(buf), bad_magic);
  bad_magic[0] ^= 0xff;
  EXPECT_FALSE(net::parse_header(bad_magic, sizeof(bad_magic)).has_value());
  // A from-incarnation of zero can never name a live process.
  net::encode_header(net::DatagramHeader{ProcessId{SiteId{1}, 0}, 0}, buf);
  EXPECT_FALSE(net::parse_header(buf, sizeof(buf)).has_value());
}

TEST(NetConfig, ParsesAddresses) {
  const auto addr = net::parse_addr("10.1.2.3:4567");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->ip, 0x0A010203u);
  EXPECT_EQ(addr->port, 4567);
  EXPECT_FALSE(net::parse_addr("10.1.2:4567").has_value());
  EXPECT_FALSE(net::parse_addr("10.1.2.3").has_value());
  EXPECT_FALSE(net::parse_addr("10.1.2.3:99999").has_value());
  EXPECT_FALSE(net::parse_addr("10.1.2.256:1").has_value());
  EXPECT_FALSE(net::parse_addr("").has_value());
}

TEST(NetConfig, ParsesFullFile) {
  std::istringstream in(
      "# demo cluster\n"
      "self 1\n"
      "incarnation 4\n"
      "peer 0 127.0.0.1:9000\n"
      "peer 1 127.0.0.1:9001   # our bind address\n"
      "peer 2 127.0.0.1:9002\n");
  NodeConfig config;
  std::string error;
  ASSERT_TRUE(net::parse_node_config(in, config, error)) << error;
  EXPECT_EQ(config.self, SiteId{1});
  EXPECT_EQ(config.incarnation, 4u);
  EXPECT_EQ(config.universe(),
            (std::vector<SiteId>{SiteId{0}, SiteId{1}, SiteId{2}}));
  EXPECT_EQ(config.self_addr().port, 9001);
}

TEST(NetConfig, ParsesAdminLines) {
  std::istringstream in(
      "self 1\n"
      "peer 0 127.0.0.1:9000\n"
      "peer 1 127.0.0.1:9001\n"
      "peer 2 127.0.0.1:9002\n"
      "admin 1 127.0.0.1:9101\n"
      "admin 2 127.0.0.1:9102\n");
  NodeConfig config;
  std::string error;
  ASSERT_TRUE(net::parse_node_config(in, config, error)) << error;
  ASSERT_EQ(config.admin.size(), 2u);
  EXPECT_EQ(config.admin.at(SiteId{2}).port, 9102);
  ASSERT_TRUE(config.self_admin_addr().has_value());
  EXPECT_EQ(config.self_admin_addr()->port, 9101);
}

TEST(NetConfig, AdminLinesAreOptional) {
  std::istringstream in(
      "self 0\n"
      "peer 0 127.0.0.1:9000\n"
      "peer 1 127.0.0.1:9001\n");
  NodeConfig config;
  std::string error;
  ASSERT_TRUE(net::parse_node_config(in, config, error)) << error;
  EXPECT_TRUE(config.admin.empty());
  EXPECT_FALSE(config.self_admin_addr().has_value());
}

TEST(NetConfig, RejectsBadAdminLines) {
  const char* base =
      "self 0\n"
      "peer 0 127.0.0.1:9000\n"
      "peer 1 127.0.0.1:9001\n";
  const char* bad[] = {
      "admin 0 127.0.0.1:9100\nadmin 0 127.0.0.1:9101\n",  // duplicate site
      "admin 7 127.0.0.1:9100\n",                          // unknown site
      "admin 0 127.0.0.1\n",                               // bad address
      "admin 0\n",                                         // missing address
  };
  for (const char* lines : bad) {
    std::istringstream in(std::string(base) + lines);
    NodeConfig config;
    std::string error;
    EXPECT_FALSE(net::parse_node_config(in, config, error)) << lines;
    EXPECT_FALSE(error.empty());
  }
}

TEST(NetConfig, ParsesSvcLines) {
  std::istringstream in(
      "self 1\n"
      "peer 0 127.0.0.1:9000\n"
      "peer 1 127.0.0.1:9001\n"
      "peer 2 127.0.0.1:9002\n"
      "svc 1 127.0.0.1:9201\n"
      "svc 2 127.0.0.1:9202\n");
  NodeConfig config;
  std::string error;
  ASSERT_TRUE(net::parse_node_config(in, config, error)) << error;
  ASSERT_EQ(config.svc.size(), 2u);
  EXPECT_EQ(config.svc.at(SiteId{2}).port, 9202);
  ASSERT_TRUE(config.self_svc_addr().has_value());
  EXPECT_EQ(config.self_svc_addr()->port, 9201);
}

TEST(NetConfig, SvcLinesAreOptional) {
  std::istringstream in(
      "self 0\n"
      "peer 0 127.0.0.1:9000\n"
      "peer 1 127.0.0.1:9001\n");
  NodeConfig config;
  std::string error;
  ASSERT_TRUE(net::parse_node_config(in, config, error)) << error;
  EXPECT_TRUE(config.svc.empty());
  EXPECT_FALSE(config.self_svc_addr().has_value());
}

TEST(NetConfig, RejectsBadSvcLines) {
  const char* base =
      "self 0\n"
      "peer 0 127.0.0.1:9000\n"
      "peer 1 127.0.0.1:9001\n";
  const char* bad[] = {
      "svc 0 127.0.0.1:9200\nsvc 0 127.0.0.1:9201\n",  // duplicate site
      "svc 7 127.0.0.1:9200\n",                        // unknown site
      "svc 0 127.0.0.1\n",                             // bad address
      "svc 0\n",                                       // missing address
      "svc zero 127.0.0.1:9200\n",                     // non-numeric site
  };
  for (const char* lines : bad) {
    std::istringstream in(std::string(base) + lines);
    NodeConfig config;
    std::string error;
    EXPECT_FALSE(net::parse_node_config(in, config, error)) << lines;
    EXPECT_FALSE(error.empty());
  }
}

TEST(NetConfig, RejectsMalformedFiles) {
  const char* bad[] = {
      "peer 0 127.0.0.1:9000\npeer 1 127.0.0.1:9001\n",  // no self
      "self 0\npeer 1 127.0.0.1:9001\npeer 2 127.0.0.1:9002\n",  // self absent
      "self 0\npeer 0 127.0.0.1:9000\n",                    // fewer than 2
      "self 0\npeer 0 127.0.0.1:9000\npeer 0 127.0.0.1:1\n",  // duplicate
      "self 0\nbogus line\npeer 0 127.0.0.1:9000\n",          // unknown keyword
      "self 0\npeer 0 127.0.0.1\npeer 1 127.0.0.1:1\n",       // bad address
  };
  for (const char* text : bad) {
    std::istringstream in(text);
    NodeConfig config;
    std::string error;
    EXPECT_FALSE(net::parse_node_config(in, config, error)) << text;
    EXPECT_FALSE(error.empty());
  }
}

TEST(EventLoop, ClockAdvancesMonotonically) {
  EventLoop loop;
  const SimTime t0 = loop.now();
  loop.run_for(5 * kMillisecond);
  const SimTime t1 = loop.now();
  EXPECT_GE(t1, t0 + 4 * kMillisecond);
}

TEST(EventLoop, TimersFireInDeadlineOrder) {
  EventLoop loop;
  std::vector<int> fired;
  loop.set_timer(20 * kMillisecond, [&]() { fired.push_back(2); });
  loop.set_timer(5 * kMillisecond, [&]() { fired.push_back(1); });
  // Same deadline: insertion order breaks the tie, as in the simulator.
  loop.set_timer(30 * kMillisecond, [&]() { fired.push_back(3); });
  loop.set_timer(30 * kMillisecond, [&]() {
    fired.push_back(4);
    loop.stop();
  });
  loop.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(loop.pending_timers(), 0u);
}

TEST(EventLoop, CancelledTimerNeverFires) {
  EventLoop loop;
  bool fired = false;
  const runtime::TimerId id =
      loop.set_timer(1 * kMillisecond, [&]() { fired = true; });
  loop.cancel_timer(id);
  loop.run_for(10 * kMillisecond);
  EXPECT_FALSE(fired);
}

TEST(EventLoop, PostRunsOnLoopThread) {
  EventLoop loop;
  int ran = 0;
  loop.post([&]() { ++ran; });
  loop.run_for(10 * kMillisecond);
  EXPECT_EQ(ran, 1);
}

TEST(EventLoop, RunForDrainsPostedWorkEvenAtAnExpiredDeadline) {
  // A post() landing just before run_for's deadline must not be dropped:
  // run_for(0) exits its loop before any step(), so only the final drain
  // can run the closure. Regression test — run_for used to return without
  // that drain and the closure was silently lost.
  EventLoop loop;
  int ran = 0;
  loop.post([&]() { ++ran; });
  loop.run_for(0);
  EXPECT_EQ(ran, 1);
}

TEST(EventLoop, CancelledTimersDoNotGrowTheHeapWithoutBound) {
  // The detector's heartbeat pattern: arm a timeout, cancel it, rearm —
  // thousands of times between fires. Cancellation is lazy (the heap
  // entry is skipped, not extracted), so without periodic compaction the
  // heap would hold every entry ever cancelled.
  EventLoop loop;
  const runtime::TimerId keep =
      loop.set_timer(3'600'000'000, []() { FAIL() << "must not fire"; });
  for (int i = 0; i < 5000; ++i) {
    const runtime::TimerId id = loop.set_timer(1'000'000'000, []() {});
    loop.cancel_timer(id);
  }
  EXPECT_EQ(loop.pending_timers(), 1u);
  EXPECT_LE(loop.queued_timers(), 256u) << "cancelled entries never purged";
  loop.cancel_timer(keep);
}

TEST(EventLoop, CancelledTimerLeavesNoQueuedEntryBehind) {
  // The old binary heap left a cancelled entry behind (purged lazily); a
  // cancelled near-term timer could clamp epoll waits to its dead
  // deadline until the purge caught up. The timer wheel erases its entry
  // directly, so a cancel can never be a wait bound — observable as
  // queued_timers() dropping to zero immediately.
  EventLoop loop;
  loop.cancel_timer(loop.set_timer(3'600'000'000, []() {}));
  EXPECT_EQ(loop.queued_timers(), 0u);
  EXPECT_EQ(loop.pending_timers(), 0u);
  loop.run_for(kMillisecond);
  EXPECT_EQ(loop.queued_timers(), 0u);
  EXPECT_EQ(loop.pending_timers(), 0u);
}

TEST(EventLoop, StaleEventDoesNotDispatchToReusedFdNumber) {
  // Within one epoll batch: handler A closes fd B (whose event is queued
  // later in the same batch) and a new registration reuses B's number.
  // The queued event belongs to the dead registration; dispatching it to
  // the new handler would hand one connection's readiness to another.
  // The per-fd generation check must skip it.
  EventLoop loop;
  int first[2], second[2], fresh[2];
  ASSERT_EQ(::pipe2(first, O_NONBLOCK | O_CLOEXEC), 0);
  ASSERT_EQ(::pipe2(second, O_NONBLOCK | O_CLOEXEC), 0);
  ASSERT_EQ(::pipe2(fresh, O_NONBLOCK | O_CLOEXEC), 0);

  bool swapped = false;
  int new_handler_calls = 0;
  auto on_ready = [&](int self_fd, int other_fd) {
    char c;
    while (::read(self_fd, &c, 1) > 0) {
    }
    if (swapped) return;
    swapped = true;
    // Close the other registration and reuse its fd *number* for a pipe
    // with nothing to read (dup2 closes other_fd and re-targets it).
    loop.remove_fd(other_fd);
    ASSERT_EQ(::dup2(fresh[0], other_fd), other_fd);
    loop.add_fd(other_fd, [&, other_fd]() {
      ++new_handler_calls;
      char drop;
      while (::read(other_fd, &drop, 1) > 0) {
      }
    });
  };
  loop.add_fd(first[0], [&]() { on_ready(first[0], second[0]); });
  loop.add_fd(second[0], [&]() { on_ready(second[0], first[0]); });

  // Make both ends readable before the loop runs, so both events arrive
  // in one epoll batch and one handler runs while the other's event is
  // still queued.
  ASSERT_EQ(::write(first[1], "x", 1), 1);
  ASSERT_EQ(::write(second[1], "x", 1), 1);
  loop.run_for(10 * kMillisecond);
  ASSERT_TRUE(swapped);
  EXPECT_EQ(new_handler_calls, 0) << "stale event dispatched to reused fd";

  // The new registration is live: actual readiness still reaches it.
  ASSERT_EQ(::write(fresh[1], "y", 1), 1);
  loop.run_for(10 * kMillisecond);
  EXPECT_EQ(new_handler_calls, 1);

  for (const int fd : {first[0], first[1], second[0], second[1], fresh[0],
                       fresh[1]}) {
    ::close(fd);
  }
}

class UdpPair : public ::testing::Test {
 protected:
  UdpPair() {
    const std::vector<PeerAddr> addrs = {
        {INADDR_LOOPBACK, free_port()},
        {INADDR_LOOPBACK, free_port()},
    };
    a_ = std::make_unique<UdpTransport>(loop_, config_for(SiteId{0}, addrs));
    b_ = std::make_unique<UdpTransport>(loop_, config_for(SiteId{1}, addrs));
  }

  /// Runs the loop until `pred()` or ~1s of wall time.
  bool await(const std::function<bool()>& pred) {
    for (int i = 0; i < 100 && !pred(); ++i) loop_.run_for(10 * kMillisecond);
    return pred();
  }

  EventLoop loop_;
  std::unique_ptr<UdpTransport> a_;
  std::unique_ptr<UdpTransport> b_;
};

TEST_F(UdpPair, DeliversPayloadWithSenderIdentity) {
  std::vector<std::pair<ProcessId, Bytes>> got;
  b_->set_deliver([&](ProcessId from, const Bytes& payload) {
    got.emplace_back(from, payload);
  });
  a_->send(b_->self(), Bytes{1, 2, 3});
  ASSERT_TRUE(await([&]() { return !got.empty(); }));
  EXPECT_EQ(got[0].first, a_->self());
  EXPECT_EQ(got[0].second, (Bytes{1, 2, 3}));
  EXPECT_EQ(b_->stats().datagrams_received, 1u);
}

TEST_F(UdpPair, SendMultiSharesOneBuffer) {
  int got = 0;
  b_->set_deliver([&](ProcessId, const Bytes&) { ++got; });
  SharedBytes frame(Bytes{9, 9, 9});
  a_->send_multi({a_->self(), b_->self()}, frame);
  // The copy to self goes over the real socket too.
  a_->set_deliver([&](ProcessId, const Bytes&) { ++got; });
  ASSERT_TRUE(await([&]() { return got == 2; }));
  EXPECT_EQ(a_->stats().payloads_shared, 2u);
  EXPECT_EQ(a_->stats().payload_copies, 0u);
}

TEST_F(UdpPair, GroupFramesDemuxToTheirSinks) {
  // One socket, many groups: each frame lands at the sink registered for
  // the group stamped in its envelope, and nowhere else.
  std::vector<Bytes> got0, got1;
  b_->set_deliver(GroupId{0},
                  [&](ProcessId, const Bytes& p) { got0.push_back(p); });
  b_->set_deliver(GroupId{1},
                  [&](ProcessId, const Bytes& p) { got1.push_back(p); });
  a_->send(GroupId{1}, b_->self(), Bytes{11});
  a_->send(GroupId{0}, b_->self(), Bytes{10});
  ASSERT_TRUE(await([&]() { return got0.size() + got1.size() == 2; }));
  ASSERT_EQ(got0.size(), 1u);
  ASSERT_EQ(got1.size(), 1u);
  EXPECT_EQ(got0[0], Bytes{10});
  EXPECT_EQ(got1[0], Bytes{11});
  // Wire accounting is per group on both sides.
  EXPECT_EQ(a_->group_stats(GroupId{0}).frames_sent, 1u);
  EXPECT_EQ(a_->group_stats(GroupId{1}).frames_sent, 1u);
  EXPECT_EQ(b_->group_stats(GroupId{0}).frames_received, 1u);
  EXPECT_EQ(b_->group_stats(GroupId{1}).frames_received, 1u);
}

TEST_F(UdpPair, UnknownGroupFramesAreDropped) {
  int got = 0;
  b_->set_deliver([&](ProcessId, const Bytes&) { ++got; });
  a_->send(GroupId{7}, b_->self(), Bytes{1});
  ASSERT_TRUE(await([&]() { return b_->stats().dropped_unknown_group == 1; }));
  EXPECT_EQ(got, 0);
  // Unregistering turns a known group back into an unknown one — the
  // per-group teardown path NetRuntime::unhost_group relies on.
  b_->clear_deliver(kDefaultGroup);
  a_->send(b_->self(), Bytes{2});
  ASSERT_TRUE(await([&]() { return b_->stats().dropped_unknown_group == 2; }));
  EXPECT_EQ(got, 0);
}

TEST_F(UdpPair, GroupChannelStampsItsGroup) {
  // The runtime::Transport facade a hosted group sees: sends go out
  // stamped with its group id, so they demux to the peer's same-group
  // instance.
  net::GroupChannel channel(*a_, GroupId{3});
  int got = 0;
  b_->set_deliver(GroupId{3}, [&](ProcessId, const Bytes&) { ++got; });
  channel.send(b_->self(), Bytes{1});
  channel.send_to_site(SiteId{1}, Bytes{2});
  channel.send_multi({b_->self()}, SharedBytes(Bytes{3}));
  ASSERT_TRUE(await([&]() { return got == 3; }));
  EXPECT_EQ(a_->group_stats(GroupId{3}).frames_sent, 3u);
}

TEST_F(UdpPair, StaleIncarnationIsDropped) {
  int got = 0;
  b_->set_deliver([&](ProcessId, const Bytes&) { ++got; });
  // Address a previous incarnation of b's site: must die at the receiver.
  a_->send(ProcessId{SiteId{1}, 999}, Bytes{1});
  ASSERT_TRUE(
      await([&]() { return b_->stats().dropped_stale_incarnation == 1; }));
  EXPECT_EQ(got, 0);
  // Site-addressed traffic (incarnation 0 in the envelope) still lands.
  a_->send_to_site(SiteId{1}, Bytes{2});
  ASSERT_TRUE(await([&]() { return got == 1; }));
}

TEST_F(UdpPair, MalformedDatagramsAreCountedAndDropped) {
  int got = 0;
  b_->set_deliver([&](ProcessId, const Bytes&) { ++got; });

  // Raw socket speaking garbage from an unconfigured source port.
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in dest{};
  dest.sin_family = AF_INET;
  dest.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  dest.sin_port = htons(b_->config().self_addr().port);
  const std::uint8_t junk[] = {0xde, 0xad, 0xbe, 0xef};
  ::sendto(fd, junk, sizeof(junk), 0, reinterpret_cast<sockaddr*>(&dest),
           sizeof(dest));
  ASSERT_TRUE(await([&]() { return b_->stats().dropped_unknown_peer == 1; }));
  ::close(fd);

  // A well-formed header whose claimed site does not match the source
  // address (spoof) — must be dropped as malformed.
  std::uint8_t spoof[net::kHeaderSize];
  net::encode_header(net::DatagramHeader{ProcessId{SiteId{1}, 1}, 0}, spoof);
  ::sendto(a_->fd(), spoof, sizeof(spoof), 0,
           reinterpret_cast<sockaddr*>(&dest), sizeof(dest));
  ASSERT_TRUE(await([&]() { return b_->stats().dropped_malformed == 1; }));

  // A runt datagram from a configured peer.
  const std::uint8_t runt[] = {0x45};
  ::sendto(a_->fd(), runt, sizeof(runt), 0, reinterpret_cast<sockaddr*>(&dest),
           sizeof(dest));
  ASSERT_TRUE(await([&]() { return b_->stats().dropped_malformed == 2; }));
  EXPECT_EQ(got, 0);
}

TEST_F(UdpPair, DropRulesEmulatePartition) {
  int got = 0;
  b_->set_deliver([&](ProcessId, const Bytes&) { ++got; });
  b_->set_drop_site(SiteId{0}, true);
  a_->send(b_->self(), Bytes{1});
  ASSERT_TRUE(await([&]() { return b_->stats().dropped_rule == 1; }));
  EXPECT_EQ(got, 0);
  b_->set_drop_site(SiteId{0}, false);
  a_->send(b_->self(), Bytes{2});
  ASSERT_TRUE(await([&]() { return got == 1; }));

  // Sender-side drop rules stop traffic before it reaches the wire.
  const auto sent_before = a_->stats().datagrams_sent;
  a_->set_drop_all(true);
  a_->send(b_->self(), Bytes{3});
  EXPECT_EQ(a_->stats().datagrams_sent, sent_before);
  EXPECT_EQ(a_->stats().dropped_rule, 1u);
}

TEST_F(UdpPair, ExplicitFlushDrainsTheSendQueue) {
  // send() only queues; flush() is what reaches the wire. The loop's
  // flush hook calls it every step, but it is also a public, synchronous
  // operation.
  a_->send(b_->self(), Bytes{1});
  EXPECT_EQ(a_->pending_frames(), 1u);
  EXPECT_EQ(a_->stats().datagrams_sent, 0u);
  a_->flush();
  EXPECT_EQ(a_->pending_frames(), 0u);
  EXPECT_EQ(a_->stats().datagrams_sent, 1u);
  EXPECT_EQ(a_->stats().frames_sent, 1u);
  EXPECT_EQ(a_->stats().sendmsg_calls, 1u);
}

TEST_F(UdpPair, CoalescesSmallFramesIntoOneDatagramInOrder) {
  std::vector<Bytes> got;
  b_->set_deliver(
      [&](ProcessId, const Bytes& payload) { got.push_back(payload); });
  std::vector<Bytes> sent;
  for (std::uint8_t i = 0; i < 8; ++i) {
    sent.push_back(Bytes{i, static_cast<std::uint8_t>(i + 100)});
    a_->send(b_->self(), sent.back());
  }
  ASSERT_TRUE(await([&]() { return got.size() == 8; }));
  EXPECT_EQ(got, sent);  // same frames, same order
  // One tick's burst to one peer = one coalesced datagram, one syscall.
  EXPECT_EQ(a_->stats().datagrams_sent, 1u);
  EXPECT_EQ(a_->stats().frames_sent, 8u);
  EXPECT_EQ(a_->stats().datagrams_coalesced, 1u);
  EXPECT_EQ(a_->stats().sendmsg_calls, 1u);
  EXPECT_EQ(b_->stats().datagrams_received, 1u);
  EXPECT_EQ(b_->stats().frames_received, 8u);
}

TEST_F(UdpPair, CoalescingOffSendsOneDatagramPerFrameInOneSyscall) {
  ASSERT_TRUE(a_->coalescing());  // config default
  a_->set_coalescing(false);
  std::vector<Bytes> got;
  b_->set_deliver(
      [&](ProcessId, const Bytes& payload) { got.push_back(payload); });
  for (std::uint8_t i = 0; i < 5; ++i) a_->send(b_->self(), Bytes{i});
  ASSERT_TRUE(await([&]() { return got.size() == 5; }));
  for (std::uint8_t i = 0; i < 5; ++i) EXPECT_EQ(got[i], Bytes{i});
  // Five plain datagrams — but still one sendmmsg for the whole flush.
  EXPECT_EQ(a_->stats().datagrams_sent, 5u);
  EXPECT_EQ(a_->stats().datagrams_coalesced, 0u);
  EXPECT_EQ(a_->stats().sendmsg_calls, 1u);
  EXPECT_EQ(b_->stats().datagrams_received, 5u);
  EXPECT_EQ(b_->stats().frames_received, 5u);
}

TEST_F(UdpPair, FlushBatchesMultipleDestinationsIntoOneSyscall) {
  // Frames for different (site, incarnation) keys cannot share a
  // datagram, but they do share the flush's sendmmsg.
  int got = 0;
  a_->set_deliver([&](ProcessId, const Bytes&) { ++got; });
  b_->set_deliver([&](ProcessId, const Bytes&) { ++got; });
  a_->send(b_->self(), Bytes{1});        // incarnation-addressed to b
  a_->send_to_site(SiteId{1}, Bytes{2});  // site-addressed to b (key differs)
  a_->send(a_->self(), Bytes{3});        // loopback to self
  a_->flush();
  EXPECT_EQ(a_->stats().datagrams_sent, 3u);
  EXPECT_EQ(a_->stats().sendmsg_calls, 1u);
  EXPECT_TRUE(await([&]() { return got == 3; }));
}

TEST_F(UdpPair, MalformedCoalescedDatagramIsRejectedWhole) {
  // A coalesced ("EVSB") datagram whose sub-frame framing is broken must
  // drop in full — even when an intact frame precedes the damage.
  int got = 0;
  b_->set_deliver([&](ProcessId, const Bytes&) { ++got; });
  sockaddr_in dest{};
  dest.sin_family = AF_INET;
  dest.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  dest.sin_port = htons(b_->config().self_addr().port);

  // Header claims coalesced; payload = [len=2]["hi"][len=100](nothing).
  std::vector<std::uint8_t> datagram(net::kHeaderSize);
  net::encode_header(
      net::DatagramHeader{.from = a_->self(),
                          .group = kDefaultGroup,
                          .coalesced = true},
      datagram.data());
  const std::uint8_t tail[] = {2, 0, 0, 0, 'h', 'i', 100, 0, 0, 0};
  datagram.insert(datagram.end(), tail, tail + sizeof(tail));
  ::sendto(a_->fd(), datagram.data(), datagram.size(), 0,
           reinterpret_cast<sockaddr*>(&dest), sizeof(dest));
  ASSERT_TRUE(await([&]() { return b_->stats().dropped_malformed == 1; }));
  EXPECT_EQ(got, 0);
  EXPECT_EQ(b_->stats().frames_received, 0u);
  EXPECT_EQ(b_->stats().datagrams_received, 0u);

  // An "EVSB" envelope with zero sub-frames is malformed too.
  datagram.resize(net::kHeaderSize);
  ::sendto(a_->fd(), datagram.data(), datagram.size(), 0,
           reinterpret_cast<sockaddr*>(&dest), sizeof(dest));
  ASSERT_TRUE(await([&]() { return b_->stats().dropped_malformed == 2; }));
  EXPECT_EQ(got, 0);
}

TEST_F(UdpPair, ReceiveErrorsCountAsRecvErrorsNotSendErrors) {
  // Sabotage the socket out from under the transport: after dup2,
  // recvmmsg on the fd fails with ENOTSOCK. The readable path must
  // count that as a receive error — it used to land in send_errors.
  const int null_fd = ::open("/dev/null", O_RDONLY);
  ASSERT_GE(null_fd, 0);
  ASSERT_EQ(::dup2(null_fd, b_->fd()), b_->fd());
  ::close(null_fd);
  net::UdpTransportTestHook::inject_readable(*b_);
  EXPECT_EQ(b_->stats().recv_errors, 1u);
  EXPECT_EQ(b_->stats().send_errors, 0u);
}

TEST(NetConfig, ParsesCoalesceToggle) {
  const char* base =
      "self 0\n"
      "peer 0 127.0.0.1:9000\n"
      "peer 1 127.0.0.1:9001\n";
  {
    std::istringstream in(base);
    NodeConfig config;
    std::string error;
    ASSERT_TRUE(net::parse_node_config(in, config, error)) << error;
    EXPECT_TRUE(config.coalesce);  // default on
  }
  {
    std::istringstream in(std::string(base) + "coalesce off\n");
    NodeConfig config;
    std::string error;
    ASSERT_TRUE(net::parse_node_config(in, config, error)) << error;
    EXPECT_FALSE(config.coalesce);
  }
  {
    std::istringstream in(std::string(base) + "coalesce maybe\n");
    NodeConfig config;
    std::string error;
    EXPECT_FALSE(net::parse_node_config(in, config, error));
    EXPECT_FALSE(error.empty());
  }
}

}  // namespace
}  // namespace evs::test
