#include <gtest/gtest.h>

#include "common/check.hpp"
#include "evs/structure.hpp"

namespace evs::core {
namespace {

ProcessId pid(std::uint32_t site, std::uint32_t inc = 1) {
  return ProcessId{SiteId{site}, inc};
}

SubviewId svid(ProcessId p, std::uint64_t c = 0) { return SubviewId{p, c}; }
SvSetId ssid(ProcessId p, std::uint64_t c = 0) { return SvSetId{p, c}; }

/// n singleton members, each its own subview + sv-set.
EViewStructure singletons(std::uint32_t n) {
  EViewStructure s;
  for (std::uint32_t i = 0; i < n; ++i) s.add_singleton(pid(i));
  return s;
}

std::vector<ProcessId> members(std::uint32_t n) {
  std::vector<ProcessId> v;
  for (std::uint32_t i = 0; i < n; ++i) v.push_back(pid(i));
  return v;
}

TEST(Structure, SingletonShape) {
  const auto s = EViewStructure::singleton(pid(3));
  ASSERT_EQ(s.subviews().size(), 1u);
  ASSERT_EQ(s.svsets().size(), 1u);
  EXPECT_EQ(s.subviews()[0].members, std::vector<ProcessId>{pid(3)});
  EXPECT_EQ(s.subview_of(pid(3)), svid(pid(3)));
  EXPECT_EQ(s.svset_of(svid(pid(3))), ssid(pid(3)));
  s.validate({pid(3)});
}

TEST(Structure, SvSetMergeCombinesSets) {
  auto s = singletons(3);
  EvOp op;
  op.kind = EvOp::Kind::SvSetMerge;
  op.svsets = {ssid(pid(0)), ssid(pid(1)), ssid(pid(2))};
  op.new_svset = ssid(pid(0), 1);
  ASSERT_TRUE(s.apply(op));
  ASSERT_EQ(s.svsets().size(), 1u);
  EXPECT_EQ(s.svsets()[0].id, ssid(pid(0), 1));
  EXPECT_EQ(s.svsets()[0].subviews.size(), 3u);
  EXPECT_EQ(s.subviews().size(), 3u);  // subviews untouched
  s.validate(members(3));
}

TEST(Structure, SvSetMergeUnknownIdRejected) {
  auto s = singletons(2);
  EvOp op;
  op.kind = EvOp::Kind::SvSetMerge;
  op.svsets = {ssid(pid(0)), ssid(pid(9))};
  op.new_svset = ssid(pid(0), 1);
  const auto before = s;
  EXPECT_FALSE(s.apply(op));
  EXPECT_EQ(s, before);
}

TEST(Structure, SvSetMergeNeedsTwoDistinctInputs) {
  auto s = singletons(2);
  EvOp op;
  op.kind = EvOp::Kind::SvSetMerge;
  op.svsets = {ssid(pid(0))};
  op.new_svset = ssid(pid(0), 1);
  EXPECT_FALSE(s.apply(op));
  op.svsets = {ssid(pid(0)), ssid(pid(0))};
  EXPECT_FALSE(s.apply(op));
}

TEST(Structure, SubviewMergeWithinSvSet) {
  auto s = singletons(3);
  EvOp merge_sets;
  merge_sets.kind = EvOp::Kind::SvSetMerge;
  merge_sets.svsets = {ssid(pid(0)), ssid(pid(1))};
  merge_sets.new_svset = ssid(pid(0), 1);
  ASSERT_TRUE(s.apply(merge_sets));

  EvOp merge_subviews;
  merge_subviews.kind = EvOp::Kind::SubviewMerge;
  merge_subviews.subviews = {svid(pid(0)), svid(pid(1))};
  merge_subviews.new_subview = svid(pid(0), 2);
  ASSERT_TRUE(s.apply(merge_subviews));

  ASSERT_EQ(s.subviews().size(), 2u);
  const Subview* merged = s.find_subview(svid(pid(0), 2));
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->members, (std::vector<ProcessId>{pid(0), pid(1)}));
  // The merged subview lives in the merged sv-set.
  EXPECT_EQ(s.svset_of(svid(pid(0), 2)), ssid(pid(0), 1));
  s.validate(members(3));
}

TEST(Structure, SubviewMergeAcrossSvSetsHasNoEffect) {
  // Paper, Section 6.1: "If all the subviews in sv-list do not initially
  // belong to the same sv-set, the call has no effect."
  auto s = singletons(2);
  EvOp op;
  op.kind = EvOp::Kind::SubviewMerge;
  op.subviews = {svid(pid(0)), svid(pid(1))};
  op.new_subview = svid(pid(0), 1);
  const auto before = s;
  EXPECT_FALSE(s.apply(op));
  EXPECT_EQ(s, before);
}

TEST(Structure, RestrictToDropsDeadMembersAndEmptyShells) {
  auto s = singletons(3);
  EvOp merge_sets;
  merge_sets.kind = EvOp::Kind::SvSetMerge;
  merge_sets.svsets = {ssid(pid(0)), ssid(pid(1)), ssid(pid(2))};
  merge_sets.new_svset = ssid(pid(0), 1);
  ASSERT_TRUE(s.apply(merge_sets));
  EvOp merge_subviews;
  merge_subviews.kind = EvOp::Kind::SubviewMerge;
  merge_subviews.subviews = {svid(pid(0)), svid(pid(1))};
  merge_subviews.new_subview = svid(pid(0), 2);
  ASSERT_TRUE(s.apply(merge_subviews));

  // Kill p0 and p1: their merged subview empties out and disappears.
  s.restrict_to({pid(2)});
  ASSERT_EQ(s.subviews().size(), 1u);
  EXPECT_EQ(s.subviews()[0].members, std::vector<ProcessId>{pid(2)});
  ASSERT_EQ(s.svsets().size(), 1u);
  s.validate({pid(2)});
}

TEST(Structure, ValidateCatchesMemberInTwoSubviews) {
  auto s = EViewStructure::from_parts(
      {Subview{svid(pid(0)), {pid(0)}}, Subview{svid(pid(1)), {pid(0)}}},
      {SvSet{ssid(pid(0)), {svid(pid(0)), svid(pid(1))}}});
  EXPECT_THROW(s.validate({pid(0)}), InvariantViolation);
}

TEST(Structure, ValidateCatchesUncoveredMember) {
  auto s = EViewStructure::singleton(pid(0));
  EXPECT_THROW(s.validate({pid(0), pid(1)}), InvariantViolation);
}

TEST(Structure, ValidateCatchesSubviewInTwoSvSets) {
  auto s = EViewStructure::from_parts(
      {Subview{svid(pid(0)), {pid(0)}}},
      {SvSet{ssid(pid(0)), {svid(pid(0))}}, SvSet{ssid(pid(1)), {svid(pid(0))}}});
  EXPECT_THROW(s.validate({pid(0)}), InvariantViolation);
}

TEST(Structure, CodecRoundTrip) {
  auto s = singletons(4);
  EvOp op;
  op.kind = EvOp::Kind::SvSetMerge;
  op.svsets = {ssid(pid(0)), ssid(pid(2))};
  op.new_svset = ssid(pid(0), 7);
  ASSERT_TRUE(s.apply(op));

  Encoder enc;
  s.encode(enc);
  Decoder dec(enc.buffer());
  EXPECT_EQ(EViewStructure::decode(dec), s);
}

TEST(Structure, EvOpCodecRoundTrip) {
  EvOp op;
  op.kind = EvOp::Kind::SubviewMerge;
  op.subviews = {svid(pid(1)), svid(pid(2), 5)};
  op.new_subview = svid(pid(0), 9);
  Encoder enc;
  op.encode(enc);
  Decoder dec(enc.buffer());
  EXPECT_EQ(EvOp::decode(dec), op);
}

TEST(Structure, ContextRoundTripAndGarbageRejection) {
  StructureContext ctx{singletons(2), 5};
  const Bytes bytes = ctx.encode();
  const auto decoded = StructureContext::decode(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->structure, ctx.structure);
  EXPECT_EQ(decoded->applied_ev_seq, 5u);

  EXPECT_FALSE(StructureContext::decode(Bytes{}).has_value());
  EXPECT_FALSE(StructureContext::decode(Bytes{0xff, 0xff, 0xff}).has_value());
}

TEST(Structure, DegenerateEView) {
  EView ev;
  ev.structure = EViewStructure::singleton(pid(0));
  EXPECT_TRUE(ev.degenerate());
  ev.structure.add_singleton(pid(1));
  EXPECT_FALSE(ev.degenerate());
}

// ------------------------------------------------------ merge_structures ---

MemberStructureInfo info(ProcessId p, ViewId prior, const EViewStructure& s,
                         std::uint64_t applied = 0) {
  return MemberStructureInfo{p, prior, StructureContext{s, applied}};
}

// The view being installed in merge_structures tests (epoch 20).
const ViewId kNewView{20, ProcessId{SiteId{0}, 1}};

TEST(MergeStructures, SurvivorsKeepTheirSubview) {
  // Three members in one merged subview; one dies.
  auto s = singletons(3);
  EvOp merge_sets;
  merge_sets.kind = EvOp::Kind::SvSetMerge;
  merge_sets.svsets = {ssid(pid(0)), ssid(pid(1)), ssid(pid(2))};
  merge_sets.new_svset = ssid(pid(0), 1);
  ASSERT_TRUE(s.apply(merge_sets));
  EvOp merge_subviews;
  merge_subviews.kind = EvOp::Kind::SubviewMerge;
  merge_subviews.subviews = {svid(pid(0)), svid(pid(1)), svid(pid(2))};
  merge_subviews.new_subview = svid(pid(0), 2);
  ASSERT_TRUE(s.apply(merge_subviews));

  const ViewId prior{5, pid(0)};
  const auto merged = merge_structures(
      kNewView, {pid(0), pid(2)},
      {info(pid(0), prior, s, 2), info(pid(2), prior, s, 2)}, {});
  ASSERT_EQ(merged.subviews().size(), 1u);
  EXPECT_EQ(merged.subviews()[0].members,
            (std::vector<ProcessId>{pid(0), pid(2)}));
  // Ids are re-minted per view: (min member, new epoch).
  EXPECT_EQ(merged.subviews()[0].id, svid(pid(0), kNewView.epoch));
}

TEST(MergeStructures, TwoClustersStaySeparate) {
  // Partition merge: cluster A {p0,p1} one subview, cluster B {p2,p3}
  // another. The merged view keeps them in distinct subviews AND distinct
  // sv-sets — this is what lets Section 6.2's local reasoning identify
  // clusters for the state-merging problem.
  auto a = EViewStructure::from_parts(
      {Subview{svid(pid(0), 9), {pid(0), pid(1)}}},
      {SvSet{ssid(pid(0), 9), {svid(pid(0), 9)}}});
  auto b = EViewStructure::from_parts(
      {Subview{svid(pid(2), 9), {pid(2), pid(3)}}},
      {SvSet{ssid(pid(2), 9), {svid(pid(2), 9)}}});
  const ViewId va{7, pid(0)};
  const ViewId vb{6, pid(2)};
  const auto merged = merge_structures(
      kNewView, members(4),
      {info(pid(0), va, a), info(pid(1), va, a), info(pid(2), vb, b),
       info(pid(3), vb, b)},
      {});
  EXPECT_EQ(merged.subviews().size(), 2u);
  EXPECT_EQ(merged.svsets().size(), 2u);
  EXPECT_EQ(merged.subview_of(pid(0)), merged.subview_of(pid(1)));
  EXPECT_EQ(merged.subview_of(pid(2)), merged.subview_of(pid(3)));
  EXPECT_NE(merged.subview_of(pid(0)), merged.subview_of(pid(2)));
}

TEST(MergeStructures, NewcomerBecomesSingleton) {
  const auto s = EViewStructure::singleton(pid(0));
  const ViewId prior{3, pid(0)};
  const auto merged = merge_structures(kNewView, {pid(0), pid(5)},
                                       {info(pid(0), prior, s)}, {});
  EXPECT_EQ(merged.subviews().size(), 2u);
  EXPECT_EQ(merged.subview_of(pid(5)), svid(pid(5), kNewView.epoch));
  EXPECT_EQ(merged.svset_of(svid(pid(5), kNewView.epoch)),
            ssid(pid(5), kNewView.epoch));
}

TEST(MergeStructures, PendingOpsRollTheRepresentativeForward) {
  // The representative froze at ev_seq 1, but the flush union contains the
  // op with seq 2 (a subview merge). The merged structure must reflect it.
  auto s = singletons(2);
  EvOp op1;
  op1.kind = EvOp::Kind::SvSetMerge;
  op1.svsets = {ssid(pid(0)), ssid(pid(1))};
  op1.new_svset = ssid(pid(0), 1);
  ASSERT_TRUE(s.apply(op1));

  EvOp op2;
  op2.kind = EvOp::Kind::SubviewMerge;
  op2.subviews = {svid(pid(0)), svid(pid(1))};
  op2.new_subview = svid(pid(0), 2);

  const ViewId prior{4, pid(0)};
  std::map<ViewId, std::vector<std::pair<std::uint64_t, EvOp>>> pending;
  pending[prior] = {{2, op2}};

  const auto merged = merge_structures(
      kNewView, members(2),
      {info(pid(0), prior, s, 1), info(pid(1), prior, s, 1)}, pending);
  ASSERT_EQ(merged.subviews().size(), 1u);
  EXPECT_EQ(merged.subviews()[0].members, members(2));
}

TEST(MergeStructures, RepresentativeIsMostAdvancedMember) {
  // p0 froze before applying the merge (applied=0, old structure), p1
  // after (applied=1, merged structure). p1's context must win.
  auto before = singletons(2);
  auto after = before;
  EvOp op;
  op.kind = EvOp::Kind::SvSetMerge;
  op.svsets = {ssid(pid(0)), ssid(pid(1))};
  op.new_svset = ssid(pid(0), 1);
  ASSERT_TRUE(after.apply(op));

  const ViewId prior{4, pid(0)};
  const auto merged = merge_structures(
      kNewView, members(2),
      {info(pid(0), prior, before, 0), info(pid(1), prior, after, 1)}, {});
  // The sv-set merge applied by the most advanced member survives: one
  // sv-set containing both subviews.
  ASSERT_EQ(merged.svsets().size(), 1u);
  EXPECT_EQ(merged.svsets()[0].subviews.size(), 2u);
}

TEST(MergeStructures, MemberMissingFromOwnClusterBecomesSingleton) {
  // Defensive path: a context that does not even contain its reporter.
  const auto s = EViewStructure::singleton(pid(0));
  const ViewId prior{2, pid(9)};
  const auto merged =
      merge_structures(kNewView, {pid(1)}, {info(pid(1), prior, s)}, {});
  EXPECT_EQ(merged.subview_of(pid(1)), svid(pid(1), kNewView.epoch));
}

TEST(MergeStructures, EmptyInfosYieldAllSingletons) {
  const auto merged = merge_structures(kNewView, members(3), {}, {});
  EXPECT_EQ(merged.subviews().size(), 3u);
  EXPECT_EQ(merged.svsets().size(), 3u);
}

TEST(MergeStructures, PrePartitionSubviewIdDoesNotAliasClusters) {
  // Regression: a subview formed *before* a partition survives (with the
  // same old id) into both sides. When the partition heals, the two
  // clusters must NOT collapse into one subview just because their prior
  // ids match — grouping is keyed by (prior view, id).
  const SubviewId shared_id{pid(0), 7};
  auto a = EViewStructure::from_parts({Subview{shared_id, {pid(0), pid(1)}}},
                                      {SvSet{ssid(pid(0), 7), {shared_id}}});
  auto b = EViewStructure::from_parts({Subview{shared_id, {pid(2), pid(3)}}},
                                      {SvSet{ssid(pid(0), 7), {shared_id}}});
  const ViewId va{9, pid(0)};
  const ViewId vb{9, pid(2)};
  const auto merged = merge_structures(
      kNewView, members(4),
      {info(pid(0), va, a), info(pid(1), va, a), info(pid(2), vb, b),
       info(pid(3), vb, b)},
      {});
  ASSERT_EQ(merged.subviews().size(), 2u);
  EXPECT_NE(merged.subview_of(pid(0)), merged.subview_of(pid(2)));
  EXPECT_EQ(merged.svsets().size(), 2u);
}

TEST(MergeStructures, ResultIsValidPartition) {
  auto a = EViewStructure::from_parts(
      {Subview{svid(pid(0), 3), {pid(0), pid(1), pid(2)}}},
      {SvSet{ssid(pid(0), 3), {svid(pid(0), 3)}}});
  const ViewId va{9, pid(0)};
  // p2 is gone; p7 is new.
  const auto merged = merge_structures(
      kNewView, {pid(0), pid(1), pid(7)},
      {info(pid(0), va, a), info(pid(1), va, a)}, {});
  merged.validate({pid(0), pid(1), pid(7)});
  EXPECT_EQ(merged.subview_of(pid(0)), merged.subview_of(pid(1)));
  EXPECT_NE(merged.subview_of(pid(0)), merged.subview_of(pid(7)));
}

}  // namespace
}  // namespace evs::core
