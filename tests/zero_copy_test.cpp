// Regression tests for the encode-once / share-many send path.
//
// The fan-out optimization must be invisible on the wire: one application
// multicast in a stable n-member view still produces exactly n-1 physical
// messages, every recipient still sees byte-identical payloads, and the
// only thing that changes is how often the frame is built (once) and how
// the buffer is owned (shared, not copied per recipient).
#include <gtest/gtest.h>

#include <vector>

#include "sim/world.hpp"
#include "support/cluster.hpp"
#include "vsync/endpoint.hpp"

namespace evs {
namespace {

TEST(SharedBytes, DefaultIsEmptyAndUnowned) {
  SharedBytes sb;
  EXPECT_TRUE(sb.empty());
  EXPECT_EQ(sb.size(), 0u);
  EXPECT_EQ(sb.use_count(), 0);
  EXPECT_TRUE(sb.bytes().empty());
}

TEST(SharedBytes, CopiesShareOneBuffer) {
  SharedBytes sb(to_bytes("payload"));
  EXPECT_EQ(sb.use_count(), 1);
  SharedBytes copy = sb;
  EXPECT_EQ(sb.use_count(), 2);
  // Same underlying storage, not an equal clone.
  EXPECT_EQ(&sb.bytes(), &copy.bytes());
  EXPECT_EQ(to_string(copy.bytes()), "payload");
}

class CollectingActor : public sim::Actor {
 public:
  void on_message(ProcessId from, const Bytes& payload) override {
    received.emplace_back(from, payload);
  }
  std::vector<std::pair<ProcessId, Bytes>> received;
};

TEST(SendMulti, OneBufferManyDeliveriesSameWireSemantics) {
  sim::World world(7);
  const auto sites = world.add_sites(4);
  std::vector<CollectingActor*> actors;
  for (const SiteId site : sites)
    actors.push_back(&world.spawn<CollectingActor>(site));
  world.run_until_idle();

  const Bytes payload = to_bytes("fan-out");
  std::vector<ProcessId> recipients = {actors[1]->id(), actors[2]->id(),
                                       actors[3]->id()};
  world.network().send_multi(actors[0]->id(), recipients,
                             SharedBytes(Bytes(payload)));
  world.run_until_idle();

  const sim::NetworkStats& stats = world.network().stats();
  // Wire accounting is identical to three send() calls...
  EXPECT_EQ(stats.messages_sent, 3u);
  EXPECT_EQ(stats.messages_delivered, 3u);
  EXPECT_EQ(stats.bytes_sent, 3 * payload.size());
  EXPECT_EQ(stats.bytes_delivered, 3 * payload.size());
  // ...but the payload buffer was allocated once and shared, never copied.
  EXPECT_EQ(stats.payloads_shared, 3u);
  EXPECT_EQ(stats.payload_copies, 0u);
  for (std::size_t i = 1; i < 4; ++i) {
    ASSERT_EQ(actors[i]->received.size(), 1u);
    EXPECT_EQ(actors[i]->received[0].first, actors[0]->id());
    EXPECT_EQ(actors[i]->received[0].second, payload);
  }
}

TEST(SendMulti, PerLinkChecksStayIndependent) {
  sim::World world(11);
  const auto sites = world.add_sites(3);
  std::vector<CollectingActor*> actors;
  for (const SiteId site : sites)
    actors.push_back(&world.spawn<CollectingActor>(site));
  world.run_until_idle();

  // Partition the third site away: the shared buffer must still reach the
  // reachable recipient while the unreachable one is dropped per-link.
  world.network().set_partition({{sites[0], sites[1]}, {sites[2]}});
  world.network().send_multi(actors[0]->id(),
                             {actors[1]->id(), actors[2]->id()},
                             SharedBytes(to_bytes("split")));
  world.run_until_idle();

  EXPECT_EQ(actors[1]->received.size(), 1u);
  EXPECT_TRUE(actors[2]->received.empty());
  EXPECT_EQ(world.network().stats().dropped_partition, 1u);
}

class PayloadRecorder : public vsync::Delegate {
 public:
  void on_view(const gms::View&, const vsync::InstallInfo&) override {}
  void on_deliver(ProcessId sender, const Bytes& payload) override {
    delivered.emplace_back(sender, payload);
  }
  std::vector<std::pair<ProcessId, Bytes>> delivered;
};

// The satellite regression: one application multicast in a stable n-member
// view = exactly n-1 physical messages and exactly one frame encode.
TEST(ZeroCopyFanOut, OneMulticastOneEncodeNMinusOneMessages) {
  constexpr std::size_t n = 4;
  test::ClusterOptions opt;
  opt.sites = n;
  // Quiesce background fan-outs so the deltas below isolate the multicast.
  opt.endpoint.stability_interval = 0;
  test::Cluster c(opt);
  ASSERT_TRUE(c.await_stable_view(c.all_indices(), 120 * kSecond));

  std::vector<std::unique_ptr<PayloadRecorder>> recorders;
  for (std::size_t i = 0; i < n; ++i) {
    recorders.push_back(std::make_unique<PayloadRecorder>());
    c.ep(i).set_delegate(recorders.back().get());
  }

  const std::uint64_t frames_before = c.ep(0).stats().frames_encoded;
  const std::uint64_t shared_before = c.world().network().stats().payloads_shared;

  const Bytes payload = to_bytes("zero-copy-regression-payload");
  c.ep(0).multicast(Bytes(payload));
  ASSERT_TRUE(c.await([&]() {
    for (auto& r : recorders)
      if (r->delivered.empty()) return false;
    return true;
  }));

  // (a) one frame encode at the sender, n-1 shared physical messages.
  EXPECT_EQ(c.ep(0).stats().frames_encoded - frames_before, 1u);
  EXPECT_EQ(c.world().network().stats().payloads_shared - shared_before, n - 1);

  // (b) every member (including the sender's self-delivery) observed
  // byte-identical payloads: the shared buffer was not mutated by any of
  // the concurrent deliveries.
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(recorders[i]->delivered.size(), 1u) << "member " << i;
    EXPECT_EQ(recorders[i]->delivered[0].first, c.ep(0).id());
    EXPECT_EQ(recorders[i]->delivered[0].second, payload) << "member " << i;
  }
}

// PROPOSE and INSTALL are the membership fan-outs (INSTALL carries the
// full flush unions — the big frame); the coordinator must build each
// once per round, not once per member.
TEST(ZeroCopyFanOut, MembershipFramedOncePerRound) {
  constexpr std::size_t n = 5;
  test::ClusterOptions opt;
  opt.sites = n;
  opt.endpoint.stability_interval = 0;
  test::Cluster c(opt);
  ASSERT_TRUE(c.await_stable_view(c.all_indices(), 120 * kSecond));

  // Site 0 hosts the minimum process id, so it coordinates every round.
  const vsync::EndpointStats& s = c.ep(0).stats();
  const std::uint64_t frames0 = s.frames_encoded;
  const std::uint64_t started0 = s.rounds_started;
  const std::uint64_t completed0 = s.rounds_completed;

  c.world().crash_site(c.site(n - 1));
  ASSERT_TRUE(c.await_stable_view({0, 1, 2, 3}, 120 * kSecond));

  // With stability off and no data traffic, the coordinator framed exactly
  // one PROPOSE per round started and one INSTALL per round completed —
  // independent of the member count.
  EXPECT_EQ(s.frames_encoded - frames0,
            (s.rounds_started - started0) + (s.rounds_completed - completed0));
  EXPECT_GT(s.rounds_completed, completed0);
  EXPECT_GT(s.frame_bytes_encoded, 0u);
}

}  // namespace
}  // namespace evs
