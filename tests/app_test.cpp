#include <gtest/gtest.h>

#include "app/classify.hpp"
#include "app/mode.hpp"
#include "common/check.hpp"
#include "evs/structure.hpp"

namespace evs::app {
namespace {

using core::EView;
using core::EViewStructure;
using core::Subview;
using core::SvSet;

ProcessId pid(std::uint32_t site, std::uint32_t inc = 1) {
  return ProcessId{SiteId{site}, inc};
}

// ------------------------------------------------------------ ModeMachine

TEST(ModeMachine, StartsInSettling) {
  ModeMachine m(0);
  EXPECT_EQ(m.mode(), Mode::Settling);
}

TEST(ModeMachine, FailureFromSettling) {
  ModeMachine m(0);
  const auto t = m.on_view({.can_serve_all = false}, 10);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, Transition::Failure);
  EXPECT_EQ(m.mode(), Mode::Reduced);
}

TEST(ModeMachine, RepairFromReduced) {
  ModeMachine m(0);
  m.on_view({.can_serve_all = false}, 10);
  const auto t = m.on_view({.can_serve_all = true, .needs_settling = true}, 20);
  EXPECT_EQ(*t, Transition::Repair);
  EXPECT_EQ(m.mode(), Mode::Settling);
}

TEST(ModeMachine, ReconcileCompletesTheCycle) {
  ModeMachine m(0);
  m.on_view({.can_serve_all = false}, 10);
  m.on_view({.can_serve_all = true, .needs_settling = true}, 20);
  EXPECT_EQ(m.reconcile(30), Transition::Reconcile);
  EXPECT_EQ(m.mode(), Mode::Normal);
}

TEST(ModeMachine, ReconfigureFromNormal) {
  ModeMachine m(0);
  m.on_view({.can_serve_all = true, .needs_settling = true}, 10);
  m.reconcile(20);
  const auto t = m.on_view({.can_serve_all = true, .needs_settling = true}, 30);
  EXPECT_EQ(*t, Transition::Reconfigure);
  EXPECT_EQ(m.mode(), Mode::Settling);
}

TEST(ModeMachine, OverlappingReconstructionIsReconfigure) {
  // Figure 1: Reconfigure transitions from S to S characterise
  // overlapping global-state reconstruction instances.
  ModeMachine m(0);
  m.on_view({.can_serve_all = true, .needs_settling = true}, 10);
  const auto t = m.on_view({.can_serve_all = true, .needs_settling = true}, 20);
  EXPECT_EQ(*t, Transition::Reconfigure);
  EXPECT_EQ(m.mode(), Mode::Settling);
  EXPECT_EQ(m.count(Transition::Reconfigure), 2u);
}

TEST(ModeMachine, FailureFromNormal) {
  ModeMachine m(0);
  m.on_view({.can_serve_all = true, .needs_settling = true}, 10);
  m.reconcile(20);
  const auto t = m.on_view({.can_serve_all = false}, 30);
  EXPECT_EQ(*t, Transition::Failure);
  EXPECT_EQ(m.mode(), Mode::Reduced);
}

TEST(ModeMachine, NoTransitionWhenNothingChanges) {
  ModeMachine m(0);
  m.on_view({.can_serve_all = false}, 10);
  EXPECT_FALSE(m.on_view({.can_serve_all = false}, 20).has_value());  // R->R
  m.on_view({.can_serve_all = true, .needs_settling = true}, 30);
  m.reconcile(40);
  EXPECT_FALSE(
      m.on_view({.can_serve_all = true, .needs_settling = false}, 50)
          .has_value());  // N->N
}

TEST(ModeMachine, NoDirectReducedToNormal) {
  // The paper: "To return back to N-mode, a process must first pass
  // through S-mode." Even with nothing to settle, R goes to S.
  ModeMachine m(0);
  m.on_view({.can_serve_all = false}, 10);
  const auto t =
      m.on_view({.can_serve_all = true, .needs_settling = false}, 20);
  EXPECT_EQ(*t, Transition::Repair);
  EXPECT_EQ(m.mode(), Mode::Settling);
}

TEST(ModeMachine, ReconcileOutsideSettlingIsIllegal) {
  ModeMachine m(0);
  m.on_view({.can_serve_all = false}, 10);
  EXPECT_THROW(m.reconcile(20), InvariantViolation);  // from R
  m.on_view({.can_serve_all = true, .needs_settling = true}, 30);
  m.reconcile(40);
  EXPECT_THROW(m.reconcile(50), InvariantViolation);  // from N
}

TEST(ModeMachine, OccupancyAccounting) {
  ModeMachine m(0);
  m.on_view({.can_serve_all = false}, 100);          // S for [0,100)
  m.on_view({.can_serve_all = true, .needs_settling = true}, 300);  // R for 200
  m.reconcile(350);                                  // S for 50
  EXPECT_EQ(m.occupancy(Mode::Settling, 400), 150u);
  EXPECT_EQ(m.occupancy(Mode::Reduced, 400), 200u);
  EXPECT_EQ(m.occupancy(Mode::Normal, 400), 50u);
}

TEST(ModeMachine, TransitionCounts) {
  ModeMachine m(0);
  m.on_view({.can_serve_all = false}, 1);
  m.on_view({.can_serve_all = true, .needs_settling = true}, 2);
  m.reconcile(3);
  m.on_view({.can_serve_all = false}, 4);
  m.on_view({.can_serve_all = true, .needs_settling = true}, 5);
  m.reconcile(6);
  EXPECT_EQ(m.count(Transition::Failure), 2u);
  EXPECT_EQ(m.count(Transition::Repair), 2u);
  EXPECT_EQ(m.count(Transition::Reconcile), 2u);
  EXPECT_EQ(m.count(Transition::Reconfigure), 0u);
}

// --------------------------------------------------------------- classify

EView make_eview(std::vector<std::vector<ProcessId>> subview_members,
                 std::vector<std::vector<std::size_t>> svset_groups) {
  EView ev;
  std::vector<Subview> subviews;
  std::vector<ProcessId> all;
  for (std::size_t i = 0; i < subview_members.size(); ++i) {
    auto members = subview_members[i];
    std::sort(members.begin(), members.end());
    all.insert(all.end(), members.begin(), members.end());
    subviews.push_back(Subview{SubviewId{members.front(), 100 + i}, members});
  }
  std::vector<SvSet> svsets;
  for (std::size_t g = 0; g < svset_groups.size(); ++g) {
    std::vector<SubviewId> ids;
    for (const std::size_t idx : svset_groups[g]) ids.push_back(subviews[idx].id);
    std::sort(ids.begin(), ids.end());
    svsets.push_back(SvSet{SvSetId{subviews[svset_groups[g][0]].id.origin,
                                   200 + g},
                           ids});
  }
  ev.structure = EViewStructure::from_parts(std::move(subviews), std::move(svsets));
  std::sort(all.begin(), all.end());
  ev.view.id = ViewId{10, all.front()};
  ev.view.members = all;
  return ev;
}

TEST(ClassifyEnriched, TransferWhenOneServingSubviewAndStragglers) {
  // {p0,p1,p2} serving (majority of 5), {p3} stale.
  const auto ev = make_eview({{pid(0), pid(1), pid(2)}, {pid(3)}}, {{0}, {1}});
  const auto c = classify_enriched(ev, majority_of(5));
  EXPECT_EQ(c.problems, kStateTransfer);
  ASSERT_EQ(c.serving_subviews.size(), 1u);
  EXPECT_EQ(c.r_set, std::vector<ProcessId>{pid(3)});
}

TEST(ClassifyEnriched, CreationWhenNoSubviewServes) {
  const auto ev = make_eview({{pid(0)}, {pid(1)}, {pid(2)}}, {{0}, {1}, {2}});
  const auto c = classify_enriched(ev, majority_of(5));
  EXPECT_EQ(c.problems, kStateCreation);
  EXPECT_FALSE(c.creation_in_progress);
  EXPECT_EQ(c.r_set.size(), 3u);
}

TEST(ClassifyEnriched, CreationInProgressDetectedViaSvSet) {
  // Section 6.2 case (ii): subviews {p0},{p1},{p2} are already grouped in
  // one sv-set that jointly defines a majority — a creation protocol was
  // running; a newcomer should wait, not disturb it.
  const auto ev = make_eview({{pid(0)}, {pid(1)}, {pid(2)}, {pid(3)}},
                             {{0, 1, 2}, {3}});
  const auto c = classify_enriched(ev, majority_of(5));
  EXPECT_TRUE(c.problems & kStateCreation);
  EXPECT_TRUE(c.creation_in_progress);
}

TEST(ClassifyEnriched, MergingWhenTwoClustersServe) {
  // Both subviews can serve (predicate: any pair) — diverged clusters.
  const auto ev = make_eview({{pid(0), pid(1)}, {pid(2), pid(3)}}, {{0}, {1}});
  const auto c = classify_enriched(ev, [](const std::vector<ProcessId>& m) {
    return m.size() >= 2;
  });
  EXPECT_EQ(c.problems, kStateMerging);
  EXPECT_EQ(c.serving_subviews.size(), 2u);
  EXPECT_TRUE(c.r_set.empty());
}

TEST(ClassifyEnriched, MergingPlusTransfer) {
  const auto ev =
      make_eview({{pid(0), pid(1)}, {pid(2), pid(3)}, {pid(4)}}, {{0}, {1}, {2}});
  const auto c = classify_enriched(ev, [](const std::vector<ProcessId>& m) {
    return m.size() >= 2;
  });
  EXPECT_EQ(c.problems, kStateMerging | kStateTransfer);
}

TEST(ClassifyEnriched, NoProblemWhenDegenerateAndServing) {
  const auto ev = make_eview({{pid(0), pid(1), pid(2)}}, {{0}});
  const auto c = classify_enriched(ev, majority_of(5));
  EXPECT_EQ(c.problems, kNoProblem);
}

TEST(ClassifyEnriched, ServingSubviewsOrderedByCapability) {
  const auto ev =
      make_eview({{pid(4)}, {pid(0), pid(1), pid(2)}, {pid(3), pid(5)}},
                 {{0}, {1}, {2}});
  const auto c = classify_enriched(ev, [](const std::vector<ProcessId>& m) {
    return m.size() >= 2;
  });
  ASSERT_EQ(c.serving_subviews.size(), 2u);
  // Largest first.
  const auto* first = ev.structure.find_subview(c.serving_subviews[0]);
  EXPECT_EQ(first->members.size(), 3u);
}

TEST(ClassifyFlat, AmbiguousOutOfReducedMode) {
  gms::View view;
  view.id = ViewId{5, pid(0)};
  view.members = {pid(0), pid(1), pid(2)};
  const ProblemSet p = classify_flat(Mode::Reduced, view, majority_of(5));
  // Cannot distinguish transfer from creation from merging (Section 4).
  EXPECT_EQ(p, kStateTransfer | kStateCreation | kStateMerging);
}

TEST(ClassifyFlat, NormalModeProcessRulesOutCreationOnly) {
  gms::View view;
  view.id = ViewId{5, pid(0)};
  view.members = {pid(0), pid(1), pid(2)};
  const ProblemSet p = classify_flat(Mode::Normal, view, majority_of(5));
  EXPECT_FALSE(p & kStateCreation);
  EXPECT_TRUE(p & kStateTransfer);
  EXPECT_TRUE(p & kStateMerging);
}

TEST(ClassifyFlat, NonServingViewHasNothingToSettle) {
  gms::View view;
  view.id = ViewId{5, pid(0)};
  view.members = {pid(0)};
  EXPECT_EQ(classify_flat(Mode::Reduced, view, majority_of(5)), kNoProblem);
}

TEST(ClassifyDiscovery, ResolvesTransferExactly) {
  gms::View view;
  view.id = ViewId{9, pid(0)};
  view.members = {pid(0), pid(1), pid(2), pid(3)};
  const ViewId prior_n{8, pid(0)};
  const ViewId prior_r{7, pid(3)};
  const auto c = classify_from_discovery(
      {{pid(0), prior_n, Mode::Normal, 5},
       {pid(1), prior_n, Mode::Normal, 5},
       {pid(2), prior_n, Mode::Normal, 5},
       {pid(3), prior_r, Mode::Reduced, 2}},
      view, majority_of(5));
  EXPECT_EQ(c.problems, kStateTransfer);
  EXPECT_EQ(c.r_set, std::vector<ProcessId>{pid(3)});
}

TEST(ClassifyDiscovery, ResolvesMergingByClusterCount) {
  gms::View view;
  view.id = ViewId{9, pid(0)};
  view.members = {pid(0), pid(1), pid(2), pid(3)};
  const ViewId cluster_a{8, pid(0)};
  const ViewId cluster_b{8, pid(2)};
  const auto c = classify_from_discovery(
      {{pid(0), cluster_a, Mode::Normal, 5},
       {pid(1), cluster_a, Mode::Normal, 5},
       {pid(2), cluster_b, Mode::Normal, 6},
       {pid(3), cluster_b, Mode::Normal, 6}},
      view, always_serves());
  EXPECT_EQ(c.problems, kStateMerging);
  EXPECT_EQ(c.serving_subviews.size(), 2u);
}

TEST(ClassifyDiscovery, ResolvesCreation) {
  gms::View view;
  view.id = ViewId{9, pid(0)};
  view.members = {pid(0), pid(1)};
  const auto c = classify_from_discovery(
      {{pid(0), ViewId{1, pid(0)}, Mode::Settling, 0},
       {pid(1), ViewId{1, pid(1)}, Mode::Reduced, 0}},
      view, majority_of(3));
  EXPECT_EQ(c.problems, kStateCreation);
}

TEST(ClassifyDiscovery, IgnoresStaleRepliesFromNonMembers) {
  gms::View view;
  view.id = ViewId{9, pid(0)};
  view.members = {pid(0), pid(1)};
  const auto c = classify_from_discovery(
      {{pid(0), ViewId{8, pid(0)}, Mode::Normal, 1},
       {pid(1), ViewId{8, pid(0)}, Mode::Normal, 1},
       {pid(9), ViewId{2, pid(9)}, Mode::Normal, 9}},  // not in view
      view, majority_of(3));
  EXPECT_EQ(c.problems, kNoProblem);
  EXPECT_EQ(c.serving_subviews.size(), 1u);
}

TEST(Predicates, MajorityAndAlways) {
  const auto maj = majority_of(5);
  EXPECT_FALSE(maj({pid(0), pid(1)}));
  EXPECT_TRUE(maj({pid(0), pid(1), pid(2)}));
  EXPECT_TRUE(always_serves()({}));
}

TEST(Problems, ToStringFormatting) {
  EXPECT_EQ(problems_to_string(kNoProblem), "none");
  EXPECT_EQ(problems_to_string(kStateTransfer), "transfer");
  EXPECT_EQ(problems_to_string(kStateTransfer | kStateMerging),
            "transfer+merging");
}

}  // namespace
}  // namespace evs::app
