// Unit tests for the admin plane (net/admin.hpp): route handling and
// refresh-at-scrape behaviour, /trace?since= paging semantics, the POST
// control side (token auth, bounded bodies, command routing and its
// counters), and the udp_transport-style hardening of the receive path —
// malformed request lines, oversized requests, partial requests whose
// client vanishes, and the connection cap — all driven through real
// loopback sockets against the server's own epoll loop, single-threaded.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <sstream>
#include <string>
#include <vector>

#include "net/admin.hpp"
#include "net/event_loop.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace evs::net {
namespace {

constexpr std::uint32_t kLoopbackIp = (127u << 24) | 1u;

/// A blocking client socket connected to the server's loopback port.
int connect_client(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ::fcntl(fd, F_SETFL, O_NONBLOCK);
  return fd;
}

/// Sends `request` raw, then pumps the loop until the server closes the
/// connection, returning everything it sent back.
std::string roundtrip(EventLoop& loop, std::uint16_t port,
                      const std::string& request) {
  const int fd = connect_client(port);
  std::size_t sent = 0;
  std::string response;
  char buf[4096];
  for (int i = 0; i < 400; ++i) {
    loop.run_for(kMillisecond);
    while (sent < request.size()) {
      const ssize_t n = ::send(fd, request.data() + sent,
                               request.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) break;
      sent += static_cast<std::size_t>(n);
    }
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      response.append(buf, static_cast<std::size_t>(n));
    } else if (n == 0 && sent == request.size()) {
      break;  // server closed: response complete
    }
  }
  ::close(fd);
  return response;
}

TEST(AdminServer, StatusIsLiveAtEveryScrape) {
  EventLoop loop;
  AdminServer server(loop, kLoopbackIp, 0);
  ASSERT_NE(server.bound_port(), 0);
  int calls = 0;
  server.set_status([&calls]() {
    ++calls;
    return "{\"scrape\":" + std::to_string(calls) + "}";
  });

  std::string r = roundtrip(loop, server.bound_port(),
                            "GET /status HTTP/1.0\r\n\r\n");
  EXPECT_NE(r.find("HTTP/1.0 200 OK"), std::string::npos) << r;
  EXPECT_NE(r.find("Content-Type: application/json"), std::string::npos);
  EXPECT_NE(r.find("{\"scrape\":1}"), std::string::npos) << r;
  r = roundtrip(loop, server.bound_port(), "GET /status HTTP/1.0\r\n\r\n");
  EXPECT_NE(r.find("{\"scrape\":2}"), std::string::npos) << r;
  EXPECT_EQ(server.stats().requests_ok, 2u);
  EXPECT_EQ(server.stats().connections_accepted, 2u);
}

TEST(AdminServer, Serves503UntilProvidersAreWired) {
  EventLoop loop;
  AdminServer server(loop, kLoopbackIp, 0);
  for (const char* path : {"/status", "/metrics", "/metrics.prom", "/trace"}) {
    const std::string r = roundtrip(
        loop, server.bound_port(),
        std::string("GET ") + path + " HTTP/1.0\r\n\r\n");
    EXPECT_NE(r.find("HTTP/1.0 503"), std::string::npos) << path << ": " << r;
  }
  EXPECT_EQ(server.stats().requests_ok, 0u);
}

TEST(AdminServer, MetricsRefreshHookRunsBeforeEveryScrape) {
  EventLoop loop;
  AdminServer server(loop, kLoopbackIp, 0);
  obs::MetricsRegistry registry;
  std::uint64_t live_value = 41;
  server.set_metrics(&registry, [&]() {
    registry.counter("transport.dropped_malformed").set(++live_value);
  });

  std::string r = roundtrip(loop, server.bound_port(),
                            "GET /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(r.find("\"transport.dropped_malformed\":42"), std::string::npos)
      << r;
  r = roundtrip(loop, server.bound_port(),
                "GET /metrics.prom HTTP/1.0\r\n\r\n");
  EXPECT_NE(r.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos)
      << r;
  EXPECT_NE(r.find("# TYPE transport_dropped_malformed counter"),
            std::string::npos)
      << r;
  EXPECT_NE(r.find("transport_dropped_malformed 43"), std::string::npos) << r;
}

TEST(AdminServer, UnknownPathIs404AndCounted) {
  EventLoop loop;
  AdminServer server(loop, kLoopbackIp, 0);
  const std::string r =
      roundtrip(loop, server.bound_port(), "GET /nope HTTP/1.0\r\n\r\n");
  EXPECT_NE(r.find("HTTP/1.0 404 Not Found"), std::string::npos) << r;
  EXPECT_EQ(server.stats().not_found, 1u);
}

TEST(AdminServer, MalformedRequestsAreDroppedAndCounted) {
  EventLoop loop;
  AdminServer server(loop, kLoopbackIp, 0);
  server.set_status([]() { return std::string("{}"); });
  const std::vector<std::string> bad = {
      "PUT /status HTTP/1.0\r\n\r\n",        // unsupported method
      "GET /status\r\n\r\n",                 // two tokens
      "GET /status SMTP/1.0\r\n\r\n",        // not HTTP
      "GET /status HTTP/1.0 extra\r\n\r\n",  // four tokens
      "complete garbage\r\n\r\n",
      "GET /trace?since=12x HTTP/1.0\r\n\r\n",  // bad query (trace wired)
  };
  obs::TraceBus bus;
  server.set_trace(&bus);
  for (const std::string& request : bad) {
    const std::string r = roundtrip(loop, server.bound_port(), request);
    EXPECT_NE(r.find("HTTP/1.0 400 Bad Request"), std::string::npos)
        << request << " -> " << r;
  }
  EXPECT_EQ(server.stats().dropped_malformed, bad.size());
  EXPECT_EQ(server.stats().requests_ok, 0u);

  // The server still serves well-formed requests afterwards.
  const std::string r =
      roundtrip(loop, server.bound_port(), "GET /status HTTP/1.0\r\n\r\n");
  EXPECT_NE(r.find("HTTP/1.0 200 OK"), std::string::npos) << r;
}

TEST(AdminServer, OversizedRequestIsDroppedAndCounted) {
  EventLoop loop;
  AdminServer server(loop, kLoopbackIp, 0);
  // Headers exceeding the buffer cap with no terminating blank line.
  std::string request = "GET /status HTTP/1.0\r\nX-Filler: ";
  request.append(AdminServer::kMaxRequestBytes, 'x');
  const std::string r = roundtrip(loop, server.bound_port(), request);
  EXPECT_NE(r.find("HTTP/1.0 400"), std::string::npos) << r.substr(0, 100);
  EXPECT_NE(r.find("request too large"), std::string::npos);
  EXPECT_EQ(server.stats().dropped_oversize, 1u);
}

TEST(AdminServer, PartialRequestWhoseClientVanishesIsCleanedUp) {
  EventLoop loop;
  AdminServer server(loop, kLoopbackIp, 0);
  server.set_status([]() { return std::string("{}"); });
  const int fd = connect_client(server.bound_port());
  const std::string partial = "GET /sta";  // no terminator
  ASSERT_EQ(::send(fd, partial.data(), partial.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(partial.size()));
  for (int i = 0; i < 20; ++i) loop.run_for(kMillisecond);
  EXPECT_EQ(server.stats().connections_accepted, 1u);
  ::close(fd);  // client gives up mid-request
  for (int i = 0; i < 20; ++i) loop.run_for(kMillisecond);
  // No response was owed; the connection slot is free again.
  const std::string r =
      roundtrip(loop, server.bound_port(), "GET /status HTTP/1.0\r\n\r\n");
  EXPECT_NE(r.find("HTTP/1.0 200 OK"), std::string::npos) << r;
  EXPECT_EQ(server.stats().requests_ok, 1u);
}

TEST(AdminServer, TraceSincePagingSemantics) {
  EventLoop loop;
  AdminServer server(loop, kLoopbackIp, 0);
  obs::TraceBus bus;
  bus.set_enabled(true);
  server.set_trace(&bus);
  for (std::uint64_t i = 0; i < 5; ++i)
    bus.record({static_cast<SimTime>(i),
                ProcessId{SiteId{0}, 1},
                obs::EventKind::MessageSent,
                {},
                ProcessId{SiteId{0}, 1},
                i});

  std::string r = roundtrip(loop, server.bound_port(),
                            "GET /trace HTTP/1.0\r\n\r\n");
  EXPECT_NE(r.find("X-Evs-Next-Since: 5"), std::string::npos) << r;
  EXPECT_NE(r.find("{\"i\":0,"), std::string::npos);
  EXPECT_NE(r.find("{\"i\":4,"), std::string::npos);

  r = roundtrip(loop, server.bound_port(),
                "GET /trace?since=3 HTTP/1.0\r\n\r\n");
  EXPECT_EQ(r.find("{\"i\":0,"), std::string::npos) << r;
  EXPECT_NE(r.find("{\"i\":3,"), std::string::npos);
  EXPECT_NE(r.find("{\"i\":4,"), std::string::npos);
  EXPECT_NE(r.find("X-Evs-Next-Since: 5"), std::string::npos);

  // Caught up: empty page, next-since echoes the request.
  r = roundtrip(loop, server.bound_port(),
                "GET /trace?since=5 HTTP/1.0\r\n\r\n");
  EXPECT_NE(r.find("X-Evs-Next-Since: 5"), std::string::npos) << r;
  EXPECT_NE(r.find("Content-Length: 0"), std::string::npos);
}

TEST(AdminServer, TraceSinceOverflowIsRejectedNotWrapped) {
  // since=2^64 used to wrap to 0 and replay the entire trace; overflow
  // must be a 400 like any other malformed query.
  EventLoop loop;
  AdminServer server(loop, kLoopbackIp, 0);
  obs::TraceBus bus;
  bus.set_enabled(true);
  server.set_trace(&bus);
  bus.record({0, ProcessId{SiteId{0}, 1}, obs::EventKind::MessageSent});

  std::string r =
      roundtrip(loop, server.bound_port(),
                "GET /trace?since=18446744073709551616 HTTP/1.0\r\n\r\n");
  EXPECT_NE(r.find("HTTP/1.0 400"), std::string::npos) << r;
  EXPECT_EQ(r.find("{\"i\":0,"), std::string::npos) << "trace replayed: " << r;
  r = roundtrip(loop, server.bound_port(),
                "GET /trace?since=99999999999999999999999 HTTP/1.0\r\n\r\n");
  EXPECT_NE(r.find("HTTP/1.0 400"), std::string::npos) << r;
  EXPECT_EQ(server.stats().dropped_malformed, 2u);

  // The largest representable value still parses.
  r = roundtrip(loop, server.bound_port(),
                "GET /trace?since=18446744073709551615 HTTP/1.0\r\n\r\n");
  EXPECT_NE(r.find("HTTP/1.0 200"), std::string::npos) << r;
}

TEST(AdminServer, PostWithoutConfiguredTokenIs403) {
  EventLoop loop;
  AdminServer server(loop, kLoopbackIp, 0);
  server.set_command([](const std::string&, const std::string&) {
    return AdminCommandResult{true, {}};
  });
  const std::string r =
      roundtrip(loop, server.bound_port(),
                "POST /merge-all HTTP/1.0\r\nX-Admin-Token: guess\r\n\r\n");
  EXPECT_NE(r.find("HTTP/1.0 403"), std::string::npos) << r;
  EXPECT_EQ(server.stats().dropped_unauthorized, 1u);
  EXPECT_EQ(server.stats().commands_ok, 0u);
}

TEST(AdminServer, PostWithWrongOrMissingTokenIs401) {
  EventLoop loop;
  AdminServer server(loop, kLoopbackIp, 0);
  server.set_token("hunter2");
  server.set_command([](const std::string&, const std::string&) {
    return AdminCommandResult{true, {}};
  });
  std::string r = roundtrip(loop, server.bound_port(),
                            "POST /join HTTP/1.0\r\n\r\n");
  EXPECT_NE(r.find("HTTP/1.0 401"), std::string::npos) << r;
  r = roundtrip(loop, server.bound_port(),
                "POST /join HTTP/1.0\r\nX-Admin-Token: wrong\r\n\r\n");
  EXPECT_NE(r.find("HTTP/1.0 401"), std::string::npos) << r;
  EXPECT_EQ(server.stats().dropped_unauthorized, 2u);
  EXPECT_EQ(server.stats().commands_ok, 0u);
}

TEST(AdminServer, PostCommandsRouteToTheHandler) {
  EventLoop loop;
  AdminServer server(loop, kLoopbackIp, 0);
  server.set_token("hunter2");
  std::vector<std::pair<std::string, std::string>> seen;
  server.set_command([&](const std::string& name, const std::string& arg) {
    seen.emplace_back(name, arg);
    return AdminCommandResult{true, {}};
  });

  std::string r =
      roundtrip(loop, server.bound_port(),
                "POST /merge-all HTTP/1.0\r\nX-Admin-Token: hunter2\r\n\r\n");
  EXPECT_NE(r.find("HTTP/1.0 200"), std::string::npos) << r;
  EXPECT_NE(r.find("\"command\": \"merge-all\""), std::string::npos) << r;

  // The token may ride in the form body instead of a header.
  const std::string body = "token=hunter2";
  r = roundtrip(loop, server.bound_port(),
                "POST /merge?svset=ss(p0.1,1),ss(p1.1,0) HTTP/1.0\r\n"
                "Content-Length: " +
                    std::to_string(body.size()) + "\r\n\r\n" + body);
  EXPECT_NE(r.find("HTTP/1.0 200"), std::string::npos) << r;

  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], (std::pair<std::string, std::string>{"merge-all", ""}));
  EXPECT_EQ(seen[1], (std::pair<std::string, std::string>{
                         "merge", "ss(p0.1,1),ss(p1.1,0)"}));
  EXPECT_EQ(server.stats().commands_ok, 2u);
}

TEST(AdminServer, RejectedCommandsAre400AndCounted) {
  EventLoop loop;
  AdminServer server(loop, kLoopbackIp, 0);
  server.set_token("hunter2");
  server.set_command([](const std::string&, const std::string&) {
    return AdminCommandResult{false, "node has left the group"};
  });
  const std::string r =
      roundtrip(loop, server.bound_port(),
                "POST /leave HTTP/1.0\r\nX-Admin-Token: hunter2\r\n\r\n");
  EXPECT_NE(r.find("HTTP/1.0 400"), std::string::npos) << r;
  EXPECT_NE(r.find("node has left the group"), std::string::npos) << r;
  EXPECT_EQ(server.stats().commands_rejected, 1u);
  EXPECT_EQ(server.stats().commands_ok, 0u);
}

TEST(AdminServer, PostBodyIsBoundedAndContentLengthValidated) {
  EventLoop loop;
  AdminServer server(loop, kLoopbackIp, 0);
  server.set_token("hunter2");
  server.set_command([](const std::string&, const std::string&) {
    return AdminCommandResult{true, {}};
  });

  // Declared body over the cap: refused up front, before any body bytes.
  std::string r = roundtrip(
      loop, server.bound_port(),
      "POST /join HTTP/1.0\r\nContent-Length: " +
          std::to_string(AdminServer::kMaxBodyBytes + 1) + "\r\n\r\n");
  EXPECT_NE(r.find("HTTP/1.0 413"), std::string::npos) << r;
  EXPECT_EQ(server.stats().dropped_oversize, 1u);

  // Unparseable and overflowing Content-Length values are malformed.
  r = roundtrip(loop, server.bound_port(),
                "POST /join HTTP/1.0\r\nContent-Length: twelve\r\n\r\n");
  EXPECT_NE(r.find("HTTP/1.0 400"), std::string::npos) << r;
  r = roundtrip(
      loop, server.bound_port(),
      "POST /join HTTP/1.0\r\nContent-Length: 18446744073709551616\r\n\r\n");
  EXPECT_NE(r.find("HTTP/1.0 400"), std::string::npos) << r;
  EXPECT_EQ(server.stats().dropped_malformed, 2u);
  EXPECT_EQ(server.stats().commands_ok, 0u);
}

TEST(AdminServer, PostBodyMayArriveAfterTheHeaders) {
  // The command must wait for the declared body (the token rides in it)
  // instead of authenticating against a half-received request.
  EventLoop loop;
  AdminServer server(loop, kLoopbackIp, 0);
  server.set_token("hunter2");
  int commands = 0;
  server.set_command([&](const std::string&, const std::string&) {
    ++commands;
    return AdminCommandResult{true, {}};
  });

  const int fd = connect_client(server.bound_port());
  const std::string head =
      "POST /merge-all HTTP/1.0\r\nContent-Length: 13\r\n\r\n";
  ASSERT_EQ(::send(fd, head.data(), head.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(head.size()));
  for (int i = 0; i < 20; ++i) loop.run_for(kMillisecond);
  EXPECT_EQ(commands, 0) << "dispatched before the body arrived";

  const std::string body = "token=hunter2";
  ASSERT_EQ(::send(fd, body.data(), body.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(body.size()));
  std::string response;
  char buf[1024];
  for (int i = 0; i < 400 && response.find("200") == std::string::npos; ++i) {
    loop.run_for(kMillisecond);
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(response.find("HTTP/1.0 200"), std::string::npos) << response;
  EXPECT_EQ(commands, 1);
}

TEST(AdminServer, CommandQueriesAreStrict) {
  EventLoop loop;
  AdminServer server(loop, kLoopbackIp, 0);
  server.set_token("hunter2");
  server.set_command([](const std::string&, const std::string&) {
    return AdminCommandResult{true, {}};
  });
  // /merge needs ?svset=, the parameterless commands refuse any query,
  // and unknown POST paths are 404.
  std::string r =
      roundtrip(loop, server.bound_port(),
                "POST /merge HTTP/1.0\r\nX-Admin-Token: hunter2\r\n\r\n");
  EXPECT_NE(r.find("HTTP/1.0 400"), std::string::npos) << r;
  r = roundtrip(loop, server.bound_port(),
                "POST /join?now=1 HTTP/1.0\r\nX-Admin-Token: hunter2\r\n\r\n");
  EXPECT_NE(r.find("HTTP/1.0 400"), std::string::npos) << r;
  EXPECT_EQ(server.stats().dropped_malformed, 2u);
  r = roundtrip(loop, server.bound_port(),
                "POST /status HTTP/1.0\r\nX-Admin-Token: hunter2\r\n\r\n");
  EXPECT_NE(r.find("HTTP/1.0 404"), std::string::npos) << r;
  EXPECT_EQ(server.stats().not_found, 1u);
  EXPECT_EQ(server.stats().commands_ok, 0u);
}

TEST(AdminServer, ConnectionCapShedsExtraClients) {
  EventLoop loop;
  AdminServer server(loop, kLoopbackIp, 0);
  std::vector<int> clients;
  for (std::size_t i = 0; i < AdminServer::kMaxConnections + 3; ++i) {
    clients.push_back(connect_client(server.bound_port()));
    // Step between connects so the accept queue never outgrows the listen
    // backlog (which would stall blocking connects, not shed them).
    loop.run_for(kMillisecond);
    loop.run_for(kMillisecond);
  }
  EXPECT_EQ(server.stats().connections_accepted, AdminServer::kMaxConnections);
  EXPECT_EQ(server.stats().dropped_overload, 3u);
  for (const int fd : clients) ::close(fd);
}

TEST(AdminServer, ExportMetricsPublishesItsOwnCounters) {
  EventLoop loop;
  AdminServer server(loop, kLoopbackIp, 0);
  roundtrip(loop, server.bound_port(), "GET /nope HTTP/1.0\r\n\r\n");
  obs::MetricsRegistry registry;
  server.export_metrics(registry);
  const std::string json = registry.to_json();
  EXPECT_NE(json.find("\"admin.connections_accepted\":1"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"admin.not_found\":1"), std::string::npos);
  EXPECT_NE(json.find("\"admin.dropped_malformed\":0"), std::string::npos);
  EXPECT_NE(json.find("\"admin.dropped_unauthorized\":0"), std::string::npos);
  EXPECT_NE(json.find("\"admin.commands_ok\":0"), std::string::npos);
  EXPECT_NE(json.find("\"admin.commands_rejected\":0"), std::string::npos);
}

TEST(AdminCommandCode, IsStablePerCommand) {
  EXPECT_EQ(admin_command_code("join"), 1u);
  EXPECT_EQ(admin_command_code("leave"), 2u);
  EXPECT_EQ(admin_command_code("merge-all"), 3u);
  EXPECT_EQ(admin_command_code("merge"), 4u);
  EXPECT_EQ(admin_command_code("reboot"), 0u);
}

}  // namespace
}  // namespace evs::net
