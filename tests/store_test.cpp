// Durable store tests: the StableStore conformance suite run against both
// MemoryStore and WalStore (same observable semantics, including the
// empty-value-vs-absent-key distinction), plus WAL-specific coverage —
// group-commit batching, reopen persistence, snapshot compaction, and a
// differential recovery test that crashes the log at every record
// boundary (and in a torn tail) and compares the recovered image against
// a reference model.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "runtime/runtime.hpp"
#include "store/wal_store.hpp"

namespace evs {
namespace {

namespace fs = std::filesystem;

/// Fresh per-test scratch directory, removed on destruction.
class TempDir {
 public:
  TempDir() {
    const auto* test = testing::UnitTest::GetInstance()->current_test_info();
    path_ = fs::temp_directory_path() /
            ("evs_store_" + std::string(test->name()) + "_" +
             std::to_string(::getpid()));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

store::WalStoreConfig wal_config(const std::string& dir) {
  store::WalStoreConfig config;
  config.dir = dir;
  config.snapshot_after_bytes = 0;  // tests compact explicitly
  return config;
}

// ---------------------------------------------------------------------------
// Conformance suite: every StableStore implementation must behave
// identically through the interface. Parameterised over a factory so the
// same assertions run against MemoryStore and WalStore.

struct StoreFactory {
  std::string name;
  std::function<std::unique_ptr<runtime::StableStore>(const std::string& dir)>
      make;
};

class StoreConformanceTest : public testing::TestWithParam<StoreFactory> {
 protected:
  std::unique_ptr<runtime::StableStore> make() {
    return GetParam().make(dir_.str());
  }

 private:
  TempDir dir_;
};

TEST_P(StoreConformanceTest, PutGetEraseRoundTrip) {
  auto store = make();
  EXPECT_FALSE(store->contains("k"));
  EXPECT_EQ(store->get("k"), std::nullopt);
  store->put("k", to_bytes("v1"));
  EXPECT_TRUE(store->contains("k"));
  EXPECT_EQ(store->get("k"), to_bytes("v1"));
  store->put("k", to_bytes("v2"));  // overwrite replaces
  EXPECT_EQ(store->get("k"), to_bytes("v2"));
  store->erase("k");
  EXPECT_FALSE(store->contains("k"));
  EXPECT_EQ(store->get("k"), std::nullopt);
  store->erase("k");  // erase of absent key is a no-op
  EXPECT_FALSE(store->contains("k"));
}

TEST_P(StoreConformanceTest, EmptyValueIsPresentNotAbsent) {
  auto store = make();
  store->put("empty", Bytes{});
  ASSERT_TRUE(store->contains("empty"));
  const auto got = store->get("empty");
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->empty());
  // Overwriting a real value with an empty one must not read as erasure.
  store->put("k", to_bytes("data"));
  store->put("k", Bytes{});
  ASSERT_TRUE(store->contains("k"));
  EXPECT_EQ(store->get("k"), Bytes{});
  store->erase("k");
  EXPECT_FALSE(store->contains("k"));
}

TEST_P(StoreConformanceTest, BinaryKeysAndValues) {
  auto store = make();
  const std::string key("k\0ey\xff", 6);
  Bytes value{0x00, 0xff, 0x7f, 0x80, 0x00};
  store->put(key, value);
  EXPECT_EQ(store->get(key), value);
  EXPECT_FALSE(store->contains(std::string("k\0ey", 4)));
  Bytes big(1 << 20);
  for (std::size_t i = 0; i < big.size(); ++i)
    big[i] = static_cast<std::uint8_t>(i * 2654435761u >> 13);
  store->put("big", big);
  EXPECT_EQ(store->get("big"), big);
}

TEST_P(StoreConformanceTest, ManyKeysIndependent) {
  auto store = make();
  for (int i = 0; i < 100; ++i)
    store->put("key" + std::to_string(i), to_bytes("v" + std::to_string(i)));
  for (int i = 0; i < 100; i += 2) store->erase("key" + std::to_string(i));
  for (int i = 0; i < 100; ++i) {
    const std::string key = "key" + std::to_string(i);
    if (i % 2 == 0) {
      EXPECT_FALSE(store->contains(key)) << key;
    } else {
      EXPECT_EQ(store->get(key), to_bytes("v" + std::to_string(i))) << key;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Stores, StoreConformanceTest,
    testing::Values(
        StoreFactory{"MemoryStore",
                     [](const std::string&) -> std::unique_ptr<runtime::StableStore> {
                       return std::make_unique<runtime::MemoryStore>();
                     }},
        StoreFactory{"WalStore",
                     [](const std::string& dir)
                         -> std::unique_ptr<runtime::StableStore> {
                       return std::make_unique<store::WalStore>(wal_config(dir));
                     }}),
    [](const testing::TestParamInfo<StoreFactory>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------------
// WAL-specific behaviour.

TEST(WalStoreTest, ReopenRecoversImageIncludingEmptyValues) {
  TempDir dir;
  {
    store::WalStore store(wal_config(dir.str()));
    store.put("a", to_bytes("alpha"));
    store.put("b", Bytes{});
    store.put("c", to_bytes("gone"));
    store.erase("c");
    store.flush();
  }
  store::WalStore reopened(wal_config(dir.str()));
  EXPECT_EQ(reopened.get("a"), to_bytes("alpha"));
  ASSERT_TRUE(reopened.contains("b"));
  EXPECT_EQ(reopened.get("b"), Bytes{});
  EXPECT_FALSE(reopened.contains("c"));
  EXPECT_EQ(reopened.stats().recovered_records, 4u);
}

TEST(WalStoreTest, DestructorFlushesPendingBatch) {
  TempDir dir;
  {
    store::WalStore store(wal_config(dir.str()));
    store.put("k", to_bytes("v"));
    EXPECT_EQ(store.pending_records(), 1u);
    // No explicit flush: teardown is the last durability point.
  }
  store::WalStore reopened(wal_config(dir.str()));
  EXPECT_EQ(reopened.get("k"), to_bytes("v"));
}

TEST(WalStoreTest, GroupCommitAmortisesFsyncAcrossBatch) {
  TempDir dir;
  store::WalStore store(wal_config(dir.str()));
  for (int batch = 0; batch < 4; ++batch) {
    for (int i = 0; i < 16; ++i)
      store.put("k" + std::to_string(i), to_bytes(std::to_string(batch)));
    EXPECT_EQ(store.pending_records(), 16u);
    EXPECT_EQ(store.stats().fsync_calls, static_cast<std::uint64_t>(batch));
    store.flush();
    EXPECT_EQ(store.pending_records(), 0u);
  }
  EXPECT_EQ(store.stats().puts, 64u);
  EXPECT_EQ(store.stats().fsync_calls, 4u);  // one per batch, not per put
  EXPECT_EQ(store.stats().wal_records, 64u);
  EXPECT_LT(store.stats().fsync_calls, store.stats().puts);
  store.flush();  // empty flush is free
  EXPECT_EQ(store.stats().flushes, 4u);
}

TEST(WalStoreTest, CompactionShrinksWalAndSurvivesReopen) {
  TempDir dir;
  {
    store::WalStore store(wal_config(dir.str()));
    for (int i = 0; i < 50; ++i) store.put("k", to_bytes("version" + std::to_string(i)));
    store.put("other", to_bytes("kept"));
    store.flush();
    EXPECT_GT(store.wal_size(), 0u);
    store.compact();
    EXPECT_EQ(store.wal_size(), 0u);
    EXPECT_EQ(store.stats().snapshots, 1u);
    // Post-compaction writes land in the (now empty) log.
    store.put("post", to_bytes("compact"));
    store.flush();
  }
  store::WalStore reopened(wal_config(dir.str()));
  EXPECT_EQ(reopened.get("k"), to_bytes("version49"));
  EXPECT_EQ(reopened.get("other"), to_bytes("kept"));
  EXPECT_EQ(reopened.get("post"), to_bytes("compact"));
  EXPECT_EQ(reopened.stats().recovered_snapshot_keys, 2u);
  EXPECT_EQ(reopened.stats().recovered_records, 1u);  // only "post" replays
}

TEST(WalStoreTest, AutoCompactionTriggersOnThreshold) {
  TempDir dir;
  store::WalStoreConfig config = wal_config(dir.str());
  config.snapshot_after_bytes = 1024;
  store::WalStore store(config);
  for (int i = 0; i < 100; ++i) {
    store.put("k" + std::to_string(i % 7), Bytes(64, 0xab));
    store.flush();
  }
  EXPECT_GT(store.stats().snapshots, 0u);
  EXPECT_LE(store.wal_size(), 2048u);
  store::WalStore reopened(wal_config(dir.str()));
  EXPECT_EQ(reopened.size(), 7u);
}

TEST(WalStoreTest, TornTailIsDroppedAndTruncated) {
  TempDir dir;
  {
    store::WalStore store(wal_config(dir.str()));
    store.put("good", to_bytes("kept"));
    store.put("torn", to_bytes("this record will be cut mid-body"));
    store.flush();
  }
  const std::string wal = dir.str() + "/wal.log";
  const auto full = fs::file_size(wal);
  fs::resize_file(wal, full - 5);  // cut into the last record's body
  {
    store::WalStore recovered(wal_config(dir.str()));
    EXPECT_EQ(recovered.get("good"), to_bytes("kept"));
    EXPECT_FALSE(recovered.contains("torn"));
    EXPECT_EQ(recovered.stats().recovered_records, 1u);
    EXPECT_GT(recovered.stats().torn_tail_bytes, 0u);
    // The tail was truncated: appends continue from the good boundary.
    recovered.put("after", to_bytes("clean"));
    recovered.flush();
  }
  store::WalStore again(wal_config(dir.str()));
  EXPECT_EQ(again.get("good"), to_bytes("kept"));
  EXPECT_EQ(again.get("after"), to_bytes("clean"));
  EXPECT_EQ(again.stats().torn_tail_bytes, 0u);
}

TEST(WalStoreTest, CorruptRecordEndsReplayAtLastGoodBoundary) {
  TempDir dir;
  {
    store::WalStore store(wal_config(dir.str()));
    store.put("first", to_bytes("ok"));
    store.put("second", to_bytes("corrupted below"));
    store.flush();
  }
  // Flip a bit in the last record's body: CRC catches it, replay stops.
  const std::string wal = dir.str() + "/wal.log";
  {
    std::FILE* f = std::fopen(wal.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, -3, SEEK_END);
    int c = std::fgetc(f);
    std::fseek(f, -3, SEEK_END);
    std::fputc(c ^ 0x40, f);
    std::fclose(f);
  }
  store::WalStore recovered(wal_config(dir.str()));
  EXPECT_EQ(recovered.get("first"), to_bytes("ok"));
  EXPECT_FALSE(recovered.contains("second"));
  EXPECT_GT(recovered.stats().torn_tail_bytes, 0u);
}

TEST(WalStoreTest, CorruptSnapshotIsCountedAndSkipped) {
  TempDir dir;
  {
    store::WalStore store(wal_config(dir.str()));
    store.put("snapped", to_bytes("in snapshot"));
    store.flush();
    store.compact();
    store.put("logged", to_bytes("in wal"));
    store.flush();
  }
  // External corruption of the snapshot payload (the rename discipline
  // never produces this): recovery counts it and falls back to the WAL.
  const std::string snap = dir.str() + "/snapshot.db";
  {
    std::FILE* f = std::fopen(snap.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 10, SEEK_SET);
    int c = std::fgetc(f);
    std::fseek(f, 10, SEEK_SET);
    std::fputc(c ^ 0x01, f);
    std::fclose(f);
  }
  store::WalStore recovered(wal_config(dir.str()));
  EXPECT_EQ(recovered.stats().snapshot_decode_errors, 1u);
  EXPECT_FALSE(recovered.contains("snapped"));  // lost with the snapshot
  EXPECT_EQ(recovered.get("logged"), to_bytes("in wal"));
}

TEST(WalStoreTest, ExportMetricsProjectsStatsAndHistograms) {
  TempDir dir;
  store::WalStore store(wal_config(dir.str()));
  for (int i = 0; i < 10; ++i) store.put("k" + std::to_string(i), to_bytes("v"));
  store.flush();
  obs::MetricsRegistry registry;
  store.export_metrics(registry, "store");
  EXPECT_EQ(registry.counter("store.puts").value(), 10u);
  EXPECT_EQ(registry.counter("store.fsync_calls").value(), 1u);
  EXPECT_EQ(registry.counter("store.keys").value(), 10u);
  EXPECT_EQ(registry.histogram("store.batch_records").count(), 1u);
  EXPECT_DOUBLE_EQ(registry.histogram("store.batch_records").max(), 10.0);
  EXPECT_EQ(registry.histogram("store.sync_us").count(), 1u);
}

// ---------------------------------------------------------------------------
// Differential recovery.

namespace {

/// Byte offset of every record boundary in a WAL (0, end-of-record-1, ...,
/// file size). Parses the [u32 len][u32 crc] framing directly.
std::vector<std::uintmax_t> record_boundaries(const fs::path& wal) {
  std::vector<std::uintmax_t> cuts = {0};
  std::FILE* f = std::fopen(wal.string().c_str(), "rb");
  if (f == nullptr) return cuts;
  std::uintmax_t pos = 0;
  unsigned char header[8];
  while (std::fread(header, 1, 8, f) == 8) {
    const std::uint32_t len = static_cast<std::uint32_t>(header[0]) |
                              static_cast<std::uint32_t>(header[1]) << 8 |
                              static_cast<std::uint32_t>(header[2]) << 16 |
                              static_cast<std::uint32_t>(header[3]) << 24;
    pos += 8 + len;
    cuts.push_back(pos);
    std::fseek(f, static_cast<long>(len), SEEK_CUR);
  }
  std::fclose(f);
  return cuts;
}

void copy_dir(const fs::path& from, const fs::path& to) {
  fs::remove_all(to);
  fs::create_directories(to);
  for (const auto& entry : fs::directory_iterator(from))
    fs::copy_file(entry.path(), to / entry.path().filename());
}

}  // namespace

// A random put/erase schedule runs against the real store with
// compaction disabled, so every logged operation stays in the WAL. Then a
// simulated crash at every record boundary (truncate the log there): the
// recovered image must equal the reference model replayed to exactly that
// many operations. A second pass tears the tail mid-record at each
// boundary: the partial record must be dropped, recovering the boundary's
// model.
TEST(WalStoreDifferentialTest, CrashAtEveryRecordBoundaryMatchesModel) {
  TempDir dir;
  const fs::path base = fs::path(dir.str()) / "base";
  std::mt19937 rng(20260807);
  const std::vector<std::string> keys = {"a", "b", "c", "dd", "eee", ""};

  // models[k] = reference image after the first k logged records. An
  // erase of an absent key logs nothing, mirroring the store.
  std::vector<std::map<std::string, Bytes>> models = {{}};
  {
    store::WalStore store(wal_config(base.string()));
    std::map<std::string, Bytes> model;
    for (int i = 0; i < 150; ++i) {
      const int pick = static_cast<int>(rng() % 10);
      if (pick < 7) {
        const std::string& key = keys[rng() % keys.size()];
        Bytes value(rng() % 40, static_cast<std::uint8_t>(rng()));
        store.put(key, value);
        model[key] = std::move(value);
        models.push_back(model);
      } else if (pick < 9) {
        const std::string& key = keys[rng() % keys.size()];
        store.erase(key);
        if (model.erase(key) > 0) models.push_back(model);
      } else {
        store.flush();  // vary the batch boundaries, not the contents
      }
    }
    store.flush();
  }

  const std::vector<std::uintmax_t> cuts = record_boundaries(base / "wal.log");
  ASSERT_EQ(cuts.size(), models.size());
  ASSERT_GT(cuts.size(), 50u);

  const fs::path crash = fs::path(dir.str()) / "crash";
  for (std::size_t k = 0; k < cuts.size(); ++k) {
    // Clean cut at boundary k: exactly the first k records survive.
    copy_dir(base, crash);
    fs::resize_file(crash / "wal.log", cuts[k]);
    {
      store::WalStore recovered(wal_config(crash.string()));
      EXPECT_EQ(recovered.stats().recovered_records, k);
      EXPECT_EQ(recovered.stats().torn_tail_bytes, 0u);
      ASSERT_EQ(recovered.size(), models[k].size()) << "boundary " << k;
      for (const auto& [key, value] : models[k])
        EXPECT_EQ(recovered.get(key), value) << "boundary " << k;
    }
    // Torn tail: cut partway into record k+1 (header, then body); the
    // partial record is dropped and the image equals boundary k's model.
    if (k + 1 >= cuts.size()) continue;
    const std::uintmax_t next = cuts[k + 1];
    for (const std::uintmax_t cut :
         {cuts[k] + 3, cuts[k] + 9, next - 1}) {
      if (cut <= cuts[k] || cut >= next) continue;
      copy_dir(base, crash);
      fs::resize_file(crash / "wal.log", cut);
      store::WalStore recovered(wal_config(crash.string()));
      EXPECT_EQ(recovered.stats().recovered_records, k) << "cut " << cut;
      EXPECT_EQ(recovered.stats().torn_tail_bytes, cut - cuts[k]);
      ASSERT_EQ(recovered.size(), models[k].size()) << "cut " << cut;
      for (const auto& [key, value] : models[k])
        EXPECT_EQ(recovered.get(key), value) << "cut " << cut;
      // Recovery truncated the tail: a reopen sees a clean log.
      store::WalStore again(wal_config(crash.string()));
      EXPECT_EQ(again.stats().torn_tail_bytes, 0u);
      EXPECT_EQ(again.stats().recovered_records, k);
    }
  }
}

// Snapshots interleaved with the schedule: crash (copy) at each durable
// point after a compact and verify snapshot + WAL-suffix replay composes
// to the model.
TEST(WalStoreDifferentialTest, SnapshotPlusSuffixReplayMatchesModel) {
  TempDir dir;
  const fs::path base = fs::path(dir.str()) / "base";
  std::mt19937 rng(99);
  std::map<std::string, Bytes> model;
  std::vector<std::map<std::string, Bytes>> checkpoints;
  std::vector<fs::path> copies;
  {
    store::WalStore store(wal_config(base.string()));
    for (int i = 0; i < 200; ++i) {
      const std::string key = "k" + std::to_string(rng() % 9);
      if (rng() % 4 == 0) {
        store.erase(key);
        model.erase(key);
      } else {
        Bytes value(rng() % 30, static_cast<std::uint8_t>(i));
        store.put(key, value);
        model[key] = std::move(value);
      }
      if (i % 37 == 36) {
        store.flush();
        store.compact();
      }
      if (i % 23 == 22) {
        store.flush();
        const fs::path copy = fs::path(dir.str()) / ("cp" + std::to_string(i));
        copy_dir(base, copy);
        copies.push_back(copy);
        checkpoints.push_back(model);
      }
    }
  }
  ASSERT_GT(copies.size(), 4u);
  for (std::size_t i = 0; i < copies.size(); ++i) {
    store::WalStore recovered(wal_config(copies[i].string()));
    ASSERT_EQ(recovered.size(), checkpoints[i].size()) << "checkpoint " << i;
    for (const auto& [key, value] : checkpoints[i])
      EXPECT_EQ(recovered.get(key), value) << "checkpoint " << i;
  }
}

}  // namespace
}  // namespace evs
