// End-to-end front-door test: three real evs_node processes hosting a
// MergeableKv on 127.0.0.1, with external clients speaking the svc wire
// protocol through a SIGSTOP partition and heal.
//
//   usage: svc_loopback_test <path-to-evs_node>
//
// The contract under test (ISSUE 7): every request an external client
// submits gets exactly one *typed* response — Ok, Conflict, InvalidEpoch
// or Unavailable — never a hang, across the whole partition lifecycle:
//   1. spawn three `--object kv` nodes, each with a `svc` endpoint,
//   2. converge to the 3-view; a client learns the epoch via Get,
//   3. Put with the learned epoch -> Ok; the value is readable through a
//      *different* node (total order crossed the group),
//   4. a stale epoch is rejected with InvalidEpoch carrying the current
//      epoch (the client's re-fencing handshake),
//   5. SIGSTOP one node: the survivors install the 2-view under load; a
//      client still holding the old epoch gets InvalidEpoch{new}, re-fences
//      from that very response, and its next Put lands Ok,
//   6. SIGCONT: the 3-view returns; a post-heal Put through node 0 becomes
//      readable through the revived node (state crossed the heal),
//   7. a pipelined burst against a node with a tiny --svc-inflight cap is
//      shed with typed Unavailable{retry_after_ms} — counted on /metrics,
//      with every single request of the burst answered,
//   8. SIGTERM everything; clean exits.
//
// Plain main() runner (no gtest): exit 0 on success, 1 on failure with a
// narrated transcript on stderr. Registered RUN_SERIAL in ctest since it
// binds fixed-for-the-run loopback ports and forks real processes.
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "runtime/svc.hpp"
#include "svc/protocol.hpp"

namespace {

using evs::Bytes;
using evs::runtime::SvcOp;
using evs::runtime::SvcRequest;
using evs::runtime::SvcResponse;
using evs::runtime::SvcStatus;

constexpr int kNodes = 3;

/// Set by main() once the fleet is up: scrapes every node's /metrics into
/// $EVS_LOOPBACK_ARTIFACTS (svc counters included) so a CI failure ships
/// the server-side view of the run alongside the transcript.
std::function<void()> g_on_fail;

[[noreturn]] void die(const std::string& message) {
  std::fprintf(stderr, "FAIL: %s\n", message.c_str());
  if (g_on_fail) g_on_fail();
  std::exit(1);
}

std::uint16_t free_port() {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) die("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    die("bind() failed");
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    die("getsockname() failed");
  const std::uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

struct Child {
  pid_t pid = -1;
  int out_fd = -1;
  std::string out;
  bool exited = false;
  int exit_status = -1;
};

Child spawn_node(const std::string& binary, const std::string& config_path,
                 const std::vector<std::string>& extra) {
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) die("pipe() failed");
  const pid_t pid = ::fork();
  if (pid < 0) die("fork() failed");
  if (pid == 0) {
    ::dup2(pipe_fds[1], STDOUT_FILENO);
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    std::vector<std::string> args = {binary, "--config", config_path,
                                     "--object", "kv"};
    args.insert(args.end(), extra.begin(), extra.end());
    std::vector<char*> argv;
    for (const std::string& a : args)
      argv.push_back(const_cast<char*>(a.c_str()));
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    std::perror("execv");
    _exit(127);
  }
  ::close(pipe_fds[1]);
  ::fcntl(pipe_fds[0], F_SETFL, O_NONBLOCK);
  Child child;
  child.pid = pid;
  child.out_fd = pipe_fds[0];
  return child;
}

bool drain(std::vector<Child>& children, int timeout_ms) {
  std::vector<pollfd> fds;
  for (Child& c : children)
    if (c.out_fd >= 0) fds.push_back({c.out_fd, POLLIN, 0});
  if (fds.empty()) return false;
  if (::poll(fds.data(), fds.size(), timeout_ms) <= 0) return false;
  bool got = false;
  for (Child& c : children) {
    if (c.out_fd < 0) continue;
    char buf[4096];
    for (;;) {
      const ssize_t n = ::read(c.out_fd, buf, sizeof(buf));
      if (n > 0) {
        c.out.append(buf, static_cast<std::size_t>(n));
        got = true;
      } else if (n == 0) {
        ::close(c.out_fd);
        c.out_fd = -1;
        break;
      } else {
        break;  // EAGAIN
      }
    }
  }
  return got;
}

bool await(std::vector<Child>& children, int timeout_ms,
           const std::function<bool()>& pred) {
  for (int waited = 0; waited < timeout_ms;) {
    if (pred()) return true;
    drain(children, 50);
    waited += 50;
  }
  return pred();
}

bool contains_after(const std::string& text, std::size_t offset,
                    const std::string& needle) {
  return text.find(needle, offset) != std::string::npos;
}

std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  timeval tv{5, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  if (::send(fd, request.data(), request.size(), 0) !=
      static_cast<ssize_t>(request.size())) {
    ::close(fd);
    return {};
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0)
    response.append(buf, static_cast<std::size_t>(n));
  ::close(fd);
  return response;
}

/// Extracts `"key":<number>` from the JSON /metrics body; -1 if absent.
long long json_number(const std::string& body, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = body.find(needle);
  if (at == std::string::npos) return -1;
  return std::atoll(body.c_str() + at + needle.size());
}

void reap(Child& child) {
  int status = 0;
  if (::waitpid(child.pid, &status, 0) == child.pid) {
    child.exited = true;
    child.exit_status = status;
  }
  while (child.out_fd >= 0) {
    char buf[4096];
    const ssize_t n = ::read(child.out_fd, buf, sizeof(buf));
    if (n > 0) {
      child.out.append(buf, static_cast<std::size_t>(n));
    } else {
      ::close(child.out_fd);
      child.out_fd = -1;
    }
  }
}

void dump_outputs(const std::vector<Child>& children) {
  for (int i = 0; i < static_cast<int>(children.size()); ++i)
    std::fprintf(stderr, "--- node%d output ---\n%s\n", i,
                 children[i].out.c_str());
}

// ------------------------------------------------------------- client ---

/// A blocking external client on one persistent TCP connection. Every
/// receive runs under a hard deadline: a request that is not answered
/// with a typed response in time is the exact failure mode this test
/// exists to catch, so it dies loudly instead of waiting.
class SvcClient {
 public:
  explicit SvcClient(std::uint16_t port) : port_(port) {}
  ~SvcClient() { close_fd(); }

  void connect_or_die() {
    close_fd();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) die("client socket() failed");
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port_);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
      die("client connect() to svc port failed");
    rx_.clear();
    rx_off_ = 0;
  }

  std::uint64_t send_request(const SvcRequest& req) {
    if (fd_ < 0) connect_or_die();
    const std::uint64_t id = next_id_++;
    const Bytes body = evs::svc::encode_request(id, req);
    std::string frame;
    evs::svc::append_frame(frame, body);
    std::size_t sent = 0;
    while (sent < frame.size()) {
      const ssize_t n = ::send(fd_, frame.data() + sent, frame.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) die("client send() failed");
      sent += static_cast<std::size_t>(n);
    }
    return id;
  }

  /// Blocks until the response for `id` arrives; out-of-order responses
  /// (pipelining) are parked and returned by their own recv calls.
  SvcResponse recv_response(std::uint64_t id, int timeout_ms = 10000) {
    for (int waited = 0;;) {
      const auto parked = parked_.find(id);
      if (parked != parked_.end()) {
        SvcResponse resp = parked->second;
        parked_.erase(parked);
        return resp;
      }
      Bytes frame_body;
      switch (evs::svc::next_frame(rx_, rx_off_, frame_body)) {
        case evs::svc::FrameStatus::Frame: {
          const auto wire = evs::svc::decode_response(frame_body);
          parked_.emplace(wire.request_id, wire.resp);
          continue;
        }
        case evs::svc::FrameStatus::Malformed:
          die("server sent a malformed frame");
        case evs::svc::FrameStatus::NeedMore:
          break;
      }
      if (waited >= timeout_ms)
        die("request " + std::to_string(id) +
            " hung: no typed response within the deadline");
      pollfd pfd{fd_, POLLIN, 0};
      if (::poll(&pfd, 1, 200) > 0) {
        char buf[4096];
        const ssize_t n = ::read(fd_, buf, sizeof(buf));
        if (n > 0)
          rx_.append(buf, static_cast<std::size_t>(n));
        else if (n == 0)
          die("server closed the connection mid-request");
      } else {
        waited += 200;
      }
    }
  }

  SvcResponse call(const SvcRequest& req, int timeout_ms = 10000) {
    return recv_response(send_request(req), timeout_ms);
  }

 private:
  void close_fd() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  std::uint16_t port_;
  int fd_ = -1;
  std::string rx_;
  std::size_t rx_off_ = 0;
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, SvcResponse> parked_;
};

SvcRequest make_get(std::string key, std::uint64_t epoch) {
  SvcRequest r;
  r.op = SvcOp::Get;
  r.view_epoch = epoch;
  r.key = std::move(key);
  return r;
}

SvcRequest make_put(std::string key, std::string value, std::uint64_t epoch) {
  SvcRequest r;
  r.op = SvcOp::Put;
  r.view_epoch = epoch;
  r.key = std::move(key);
  r.value = std::move(value);
  return r;
}

/// Puts with the fenced epoch, honouring the protocol's own retry
/// contract: Unavailable{retry_after_ms} means "not serving right now"
/// (settling after a view change, admission shed) and is retried; any
/// other non-Ok answer is a test failure.
SvcResponse put_until_ok(SvcClient& client, const std::string& key,
                         const std::string& value, std::uint64_t epoch,
                         const char* what) {
  for (int waited = 0; waited < 30000;) {
    const SvcResponse resp = client.call(make_put(key, value, epoch));
    if (resp.status == SvcStatus::Ok) return resp;
    if (resp.status != SvcStatus::Unavailable)
      die(std::string(what) + ": Put answered " +
          evs::runtime::to_string(resp.status) + " instead of Ok");
    const int backoff_ms =
        resp.retry_after_ms > 0 ? static_cast<int>(resp.retry_after_ms) : 50;
    ::usleep(backoff_ms * 1000);
    waited += backoff_ms;
  }
  die(std::string(what) + ": Put never succeeded");
}

/// Polls `node` with wildcard Gets until `key` reads `want` (typed Ok
/// every round — replication is eventual, a hang is not).
void await_value(SvcClient& client, const std::string& key,
                 const std::string& want, const char* what) {
  for (int waited = 0; waited < 30000; waited += 100) {
    const SvcResponse resp = client.call(make_get(key, 0));
    if (resp.status != SvcStatus::Ok)
      die(std::string(what) + ": Get answered " +
          evs::runtime::to_string(resp.status) + " instead of Ok");
    if (resp.value == want) return;
    ::usleep(100 * 1000);
  }
  die(std::string(what) + ": value never became \"" + want + "\"");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <evs_node>\n", argv[0]);
    return 2;
  }
  const std::string evs_node = argv[1];

  char dir_template[] = "/tmp/evs_svc_loopback_XXXXXX";
  if (::mkdtemp(dir_template) == nullptr) die("mkdtemp() failed");
  const std::string dir = dir_template;

  std::uint16_t ports[kNodes];
  std::uint16_t admin_ports[kNodes];
  std::uint16_t svc_ports[kNodes];
  for (auto& p : ports) p = free_port();
  for (auto& p : admin_ports) p = free_port();
  for (auto& p : svc_ports) p = free_port();

  std::vector<std::string> config_paths;
  for (int i = 0; i < kNodes; ++i) {
    const std::string path = dir + "/node" + std::to_string(i) + ".conf";
    std::ofstream os(path);
    os << "self " << i << "\n";
    for (int j = 0; j < kNodes; ++j)
      os << "peer " << j << " 127.0.0.1:" << ports[j] << "\n";
    for (int j = 0; j < kNodes; ++j)
      os << "admin " << j << " 127.0.0.1:" << admin_ports[j] << "\n";
    for (int j = 0; j < kNodes; ++j)
      os << "svc " << j << " 127.0.0.1:" << svc_ports[j] << "\n";
    os << "admin_token looptoken\n";
    config_paths.push_back(path);
  }

  if (const char* artifacts = std::getenv("EVS_LOOPBACK_ARTIFACTS")) {
    const std::string out_dir = artifacts;
    g_on_fail = [out_dir, &admin_ports]() {
      for (int i = 0; i < kNodes; ++i) {
        const std::string metrics = http_get(admin_ports[i], "/metrics");
        if (metrics.empty()) continue;
        std::ofstream os(out_dir + "/svc-node" + std::to_string(i) +
                         ".metrics.json");
        os << metrics;
      }
    };
  }

  // Node 2 gets a deliberately tiny in-flight cap: the shed phase later
  // pipelines a burst through it and expects typed Unavailable answers.
  std::vector<Child> children;
  for (int i = 0; i < kNodes; ++i) {
    std::vector<std::string> extra;
    if (i == 2) extra = {"--svc-inflight", "4"};
    children.push_back(spawn_node(evs_node, config_paths[i], extra));
  }

  // 1. Everyone serves its svc port and installs the common 3-view.
  const std::string full_view = "size=3 members=0,1,2";
  if (!await(children, 30000, [&]() {
        for (const Child& c : children) {
          if (!contains_after(c.out, 0, "svc site=")) return false;
          if (!contains_after(c.out, 0, full_view)) return false;
        }
        return true;
      })) {
    dump_outputs(children);
    die("nodes never served svc and converged to the common 3-view");
  }
  std::fprintf(stderr, "ok: 3-view installed, svc ports up\n");

  SvcClient client0(svc_ports[0]);
  SvcClient client1(svc_ports[1]);
  SvcClient client2(svc_ports[2]);

  // 2. An external client learns the epoch through a wildcard Get.
  const SvcResponse hello = client0.call(make_get("k", 0));
  if (hello.status != SvcStatus::Ok)
    die("wildcard Get was not Ok");
  const std::uint64_t epoch = hello.view_epoch;
  if (epoch == 0) die("Ok response carries no view epoch");
  std::fprintf(stderr, "ok: client learned epoch %llu\n",
               static_cast<unsigned long long>(epoch));

  // 3. A fenced Put through node 0 becomes readable through node 1.
  put_until_ok(client0, "k", "v1", epoch, "fenced Put");
  await_value(client1, "k", "v1", "cross-node read");
  std::fprintf(stderr, "ok: fenced Put visible through another node\n");

  // 4. A stale epoch is rejected with the current epoch to re-fence by.
  const SvcResponse stale = client0.call(make_put("k", "bad", epoch - 1));
  if (stale.status != SvcStatus::InvalidEpoch)
    die("stale-epoch Put was not InvalidEpoch");
  if (stale.view_epoch != epoch)
    die("InvalidEpoch does not carry the current epoch");
  std::fprintf(stderr, "ok: stale epoch rejected with current epoch\n");

  // 5. SIGSTOP node 2: survivors install the 2-view. The client's old
  //    epoch goes stale; the InvalidEpoch answer itself is the re-fence.
  const std::size_t stop_offset[2] = {children[0].out.size(),
                                      children[1].out.size()};
  ::kill(children[2].pid, SIGSTOP);
  const std::string survivor_pair = "size=2 members=0,1";
  if (!await(children, 60000, [&]() {
        return contains_after(children[0].out, stop_offset[0],
                              survivor_pair) &&
               contains_after(children[1].out, stop_offset[1], survivor_pair);
      })) {
    dump_outputs(children);
    die("survivors never installed the 2-view during the SIGSTOP partition");
  }
  const SvcResponse fenced = client0.call(make_put("k", "v2", epoch));
  if (fenced.status != SvcStatus::InvalidEpoch)
    die("old-epoch Put across the view change was not InvalidEpoch");
  const std::uint64_t epoch2 = fenced.view_epoch;
  if (epoch2 <= epoch)
    die("InvalidEpoch across the view change carries a stale epoch");
  put_until_ok(client0, "k", "v2", epoch2, "re-fenced 2-view Put");
  await_value(client1, "k", "v2", "2-view read");
  std::fprintf(stderr,
               "ok: partition fenced the old epoch, re-fenced Put landed\n");

  // 6. SIGCONT: the 3-view returns; a post-heal Put through node 0 must
  //    become readable through the revived node 2.
  const std::size_t cont_offset[kNodes] = {children[0].out.size(),
                                           children[1].out.size(),
                                           children[2].out.size()};
  ::kill(children[2].pid, SIGCONT);
  if (!await(children, 60000, [&]() {
        for (int i = 0; i < kNodes; ++i)
          if (!contains_after(children[i].out, cont_offset[i], full_view))
            return false;
        return true;
      })) {
    dump_outputs(children);
    die("fleet never reconverged to the 3-view after SIGCONT");
  }
  const SvcResponse healed = client0.call(make_get("k", 0));
  if (healed.status != SvcStatus::Ok) die("post-heal Get was not Ok");
  const std::uint64_t epoch3 = healed.view_epoch;
  if (epoch3 <= epoch2) die("post-heal epoch did not advance");
  put_until_ok(client0, "post-heal", "v3", epoch3, "post-heal Put");
  await_value(client2, "post-heal", "v3", "revived-node read");
  std::fprintf(stderr, "ok: post-heal Put visible through revived node\n");

  // 7. Overload shed: pipeline a burst through node 2's tiny in-flight
  //    cap. Every request must be answered — Ok for the admitted ones,
  //    Unavailable with a retry hint for the shed ones, nothing dropped.
  constexpr int kBurst = 64;
  std::vector<std::uint64_t> ids;
  ids.reserve(kBurst);
  for (int i = 0; i < kBurst; ++i)
    ids.push_back(client2.send_request(
        make_put("burst" + std::to_string(i), "x", 0)));
  int burst_ok = 0;
  int burst_shed = 0;
  for (const std::uint64_t id : ids) {
    const SvcResponse resp = client2.recv_response(id);
    if (resp.status == SvcStatus::Ok) {
      ++burst_ok;
    } else if (resp.status == SvcStatus::Unavailable) {
      if (resp.retry_after_ms == 0)
        die("shed response carries no retry hint");
      ++burst_shed;
    } else {
      die(std::string("burst request answered ") +
          evs::runtime::to_string(resp.status));
    }
  }
  if (burst_ok == 0) die("no burst request was admitted");
  if (burst_shed == 0)
    die("pipelining past the in-flight cap shed nothing");
  std::fprintf(stderr, "ok: burst of %d -> %d ok, %d shed, 0 unanswered\n",
               kBurst, burst_ok, burst_shed);

  // ...and the shed is first-class on the admin plane.
  const std::string metrics = http_get(admin_ports[2], "/metrics");
  if (json_number(metrics, "svc.requests_shed") < burst_shed)
    die("svc.requests_shed on /metrics below the observed shed count");
  if (json_number(metrics, "svc.requests_ok") < 1)
    die("svc.requests_ok missing from /metrics");
  if (json_number(metrics, "svc.connections_accepted") < 1)
    die("svc.connections_accepted missing from /metrics");
  std::fprintf(stderr, "ok: shed and serve counters exported on /metrics\n");

  // 8. Graceful shutdown.
  for (int i = 0; i < kNodes; ++i) ::kill(children[i].pid, SIGTERM);
  for (int i = 0; i < kNodes; ++i) reap(children[i]);
  for (int i = 0; i < kNodes; ++i) {
    if (!WIFEXITED(children[i].exit_status) ||
        WEXITSTATUS(children[i].exit_status) != 0) {
      dump_outputs(children);
      die("node" + std::to_string(i) + " exited uncleanly");
    }
    if (!contains_after(children[i].out, 0, "summary ")) {
      dump_outputs(children);
      die("node" + std::to_string(i) + " printed no summary");
    }
  }
  std::fprintf(stderr, "ok: all nodes exited cleanly\n");

  for (const std::string& path : config_paths) ::unlink(path.c_str());
  ::rmdir(dir.c_str());
  std::printf("PASS\n");
  return 0;
}
