// Unit tests for the observability subsystem: TraceBus ring buffer and
// JSONL round trip, metrics registry snapshots, and the RunChecker's
// verdicts on hand-built traces (including the ISSUE-mandated corrupted
// trace where one message is delivered in two views).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/check.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace evs::obs {
namespace {

ProcessId proc(std::uint32_t site, std::uint32_t inc = 0) {
  return ProcessId{SiteId{site}, inc};
}

ViewId view(std::uint64_t epoch, std::uint32_t coord_site) {
  return ViewId{epoch, proc(coord_site)};
}

TEST(TraceBus, DisabledByDefaultAndDropsRecords) {
  TraceBus bus;
  EXPECT_FALSE(bus.enabled());
  bus.record({1, proc(0), EventKind::MessageSent});
  EXPECT_EQ(bus.recorded(), 0u);
  EXPECT_EQ(bus.size(), 0u);
}

TEST(TraceBus, RingOverwritesOldestAndCountsDrops) {
  TraceBus bus(4);
  bus.set_enabled(true);
  for (std::uint64_t i = 0; i < 6; ++i) {
    bus.record({i, proc(0), EventKind::MessageSent, {}, proc(0), i});
  }
  EXPECT_EQ(bus.recorded(), 6u);
  EXPECT_EQ(bus.dropped(), 2u);
  EXPECT_EQ(bus.size(), 4u);
  const std::vector<TraceEvent> events = bus.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest first: events 0 and 1 were overwritten.
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].seq, i + 2) << "slot " << i;
  }
}

TEST(TraceBus, JsonlRoundTripPreservesEveryField) {
  TraceBus bus(8);
  bus.set_enabled(true);
  bus.record({12345, proc(2, 1), EventKind::ViewInstalled, view(7, 2), proc(0),
              3, 42, 9});
  bus.record({99999, proc(0), EventKind::ModeTransition, view(8, 0), proc(1, 4),
              2, 2, 2});
  bus.record({0, proc(1), EventKind::MessageDelivered, view(7, 2), proc(2, 1),
              11, payload_hash({'h', 'i'}), 0});

  std::stringstream ss;
  bus.write_jsonl(ss);
  std::size_t skipped = 7;
  const std::vector<TraceEvent> back = read_jsonl(ss, &skipped);
  EXPECT_EQ(skipped, 0u);
  EXPECT_EQ(back, bus.events());
}

TEST(TraceBus, ReadJsonlSkipsUnparseableLines) {
  std::stringstream ss;
  ss << "{\"t\":5,\"proc\":\"1:0\",\"kind\":\"MessageSent\",\"view\":\"0:0:0\","
        "\"peer\":\"1:0\",\"seq\":1,\"value\":2,\"aux\":0}\n"
     << "this is not json\n"
     << "{\"t\":6,\"proc\":\"1:0\",\"kind\":\"NoSuchKind\",\"view\":\"0:0:0\","
        "\"peer\":\"1:0\",\"seq\":1,\"value\":2,\"aux\":0}\n"
     << "\n";  // blank lines are not an error
  std::size_t skipped = 0;
  const std::vector<TraceEvent> events = read_jsonl(ss, &skipped);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].time, 5u);
  EXPECT_EQ(events[0].kind, EventKind::MessageSent);
  EXPECT_EQ(skipped, 2u);
}

TEST(TraceBus, EventKindNamesRoundTrip) {
  for (int i = 1; i <= 15; ++i) {
    const auto kind = static_cast<EventKind>(i);
    EventKind back = EventKind::MessageSent;
    ASSERT_TRUE(parse_event_kind(to_string(kind), back)) << to_string(kind);
    EXPECT_EQ(back, kind);
  }
  EventKind out;
  EXPECT_FALSE(parse_event_kind("?", out));
  EXPECT_FALSE(parse_event_kind("Bogus", out));
}

TEST(Metrics, HistogramExactQuantiles) {
  Histogram h;
  for (int i = 100; i >= 1; --i) h.record(i);  // unsorted on purpose
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.50), 50.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.95), 95.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 99.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
}

TEST(Metrics, RegistrySnapshotsToSortedJson) {
  MetricsRegistry reg;
  EXPECT_TRUE(reg.empty());
  reg.counter("net.messages_sent").set(12);
  reg.counter("a.views_installed").add(3);
  reg.gauge("mode.normal_us").set(1.5);
  reg.histogram("latency_us").record(10);
  reg.histogram("latency_us").record(20);
  EXPECT_FALSE(reg.empty());

  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"net.messages_sent\":12"), std::string::npos) << json;
  EXPECT_NE(json.find("\"a.views_installed\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"mode.normal_us\":1.5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"latency_us\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\":2"), std::string::npos) << json;
  // std::map keys: "a.views_installed" sorts before "net.messages_sent".
  EXPECT_LT(json.find("a.views_installed"), json.find("net.messages_sent"));
}

// --- RunChecker on hand-built traces ---------------------------------------

// A clean two-process run: both install v1 then v2, both deliver the same
// message in v1, modes chain legally from SETTLING.
std::vector<TraceEvent> clean_trace() {
  const ProcessId a = proc(0), b = proc(1);
  const ViewId v1 = view(1, 0), v2 = view(2, 0);
  const std::uint64_t h = payload_hash({'m', '1'});
  return {
      {0, a, EventKind::ViewInstalled, v1, a, 0, 2},
      {0, b, EventKind::ViewInstalled, v1, a, 0, 2},
      {1, a, EventKind::ModeTransition, v1, {}, 3, 0, 2},  // Reconcile S->N
      {1, b, EventKind::ModeTransition, v1, {}, 3, 0, 2},
      {2, a, EventKind::MessageSent, v1, a, 1, h},
      {3, a, EventKind::MessageDelivered, v1, a, 1, h},
      {3, b, EventKind::MessageDelivered, v1, a, 1, h},
      {4, a, EventKind::EviewChange, v1, {}, 1, 2, 2},
      {5, a, EventKind::EviewChange, v1, {}, 2, 1, 1},  // coarsened
      {6, a, EventKind::ModeTransition, v2, {}, 0, 1, 0},  // Failure N->R
      {6, b, EventKind::ModeTransition, v2, {}, 0, 1, 0},
      {7, a, EventKind::ViewInstalled, v2, a, 1, 1},
      {7, b, EventKind::ViewInstalled, v2, a, 1, 1},
  };
}

TEST(RunChecker, CleanTraceHasNoViolations) {
  const std::vector<Violation> v = RunChecker::check(clean_trace());
  EXPECT_TRUE(v.empty()) << (v.empty() ? "" : v.front().str());
}

// The ISSUE-mandated corruption: the same message delivered in two
// different views must be flagged as a Uniqueness (P2.2) violation.
TEST(RunChecker, DuplicateDeliveryAcrossViewsIsUniquenessViolation) {
  std::vector<TraceEvent> events = clean_trace();
  const std::uint64_t h = payload_hash({'m', '1'});
  // Re-deliver a's v1 message at b, but inside v2.
  events.push_back(
      {8, proc(1), EventKind::MessageDelivered, view(2, 0), proc(0), 1, h});

  const std::vector<Violation> unique = RunChecker::check_uniqueness(events);
  ASSERT_EQ(unique.size(), 1u);
  EXPECT_EQ(unique[0].property, "Uniqueness (P2.2)");
  EXPECT_NE(unique[0].detail.find("2 views"), std::string::npos)
      << unique[0].str();
  // The full checker surfaces it too (plus the per-process duplicate,
  // which is an Integrity matter).
  const std::vector<Violation> all = RunChecker::check(events);
  EXPECT_FALSE(all.empty());
}

TEST(RunChecker, FlushDeliveryCountsAsDelivery) {
  // Same corruption but via a FlushDelivery event: still P2.2.
  std::vector<TraceEvent> events = clean_trace();
  const std::uint64_t h = payload_hash({'m', '1'});
  events.push_back(
      {8, proc(1), EventKind::FlushDelivery, view(2, 0), proc(0), 1, h});
  EXPECT_EQ(RunChecker::check_uniqueness(events).size(), 1u);
}

TEST(RunChecker, UnsentAndRepeatedDeliveriesAreIntegrityViolations) {
  const ProcessId a = proc(0), b = proc(1);
  const ViewId v1 = view(1, 0);
  const std::uint64_t h = payload_hash({'x'});
  const std::vector<TraceEvent> events = {
      {0, a, EventKind::MessageSent, v1, a, 1, h},
      {1, a, EventKind::MessageDelivered, v1, a, 1, h},
      {2, a, EventKind::MessageDelivered, v1, a, 1, h},  // delivered twice
      {3, b, EventKind::MessageDelivered, v1, b, 1, 777},  // never sent
  };
  const std::vector<Violation> v = RunChecker::check_integrity(events);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_NE(v[0].detail.find("more than once"), std::string::npos);
  EXPECT_NE(v[1].detail.find("never multicast"), std::string::npos);
}

TEST(RunChecker, DivergentDeliveriesAcrossSurvivorsIsAgreementViolation) {
  const ProcessId a = proc(0), b = proc(1);
  const ViewId v1 = view(1, 0), v2 = view(2, 0);
  const std::uint64_t h = payload_hash({'y'});
  const std::vector<TraceEvent> events = {
      {0, a, EventKind::ViewInstalled, v1, a, 0, 2},
      {0, b, EventKind::ViewInstalled, v1, a, 0, 2},
      {1, a, EventKind::MessageSent, v1, a, 1, h},
      {2, a, EventKind::MessageDelivered, v1, a, 1, h},
      // b never delivers it, yet both survive into v2.
      {3, a, EventKind::ViewInstalled, v2, a, 1, 2},
      {3, b, EventKind::ViewInstalled, v2, a, 1, 2},
  };
  const std::vector<Violation> v = RunChecker::check_agreement(events);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].property, "Agreement (P2.1)");
}

TEST(RunChecker, StructureMustCoarsenWithinAView) {
  const ProcessId a = proc(0);
  const ViewId v1 = view(1, 0);
  const std::vector<TraceEvent> events = {
      {0, a, EventKind::EviewChange, v1, {}, 1, 2, 2},
      {1, a, EventKind::EviewChange, v1, {}, 2, 3, 2},  // subviews grew
      {2, a, EventKind::EviewChange, v1, {}, 2, 3, 2},  // seq did not advance
  };
  const std::vector<Violation> v = RunChecker::check_structure(events);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_NE(v[0].detail.find("grew"), std::string::npos);
  EXPECT_NE(v[1].detail.find("strictly increase"), std::string::npos);
}

TEST(RunChecker, StructureMayGrowAcrossViews) {
  const ProcessId a = proc(0);
  const std::vector<TraceEvent> events = {
      {0, a, EventKind::EviewChange, view(1, 0), {}, 1, 1, 1},
      // New view: merged structures may be bigger; seq restarts.
      {1, a, EventKind::EviewChange, view(2, 0), {}, 0, 3, 3},
  };
  EXPECT_TRUE(RunChecker::check_structure(events).empty());
}

TEST(RunChecker, IllegalModeEdgeIsFlagged) {
  const ProcessId a = proc(0);
  const std::vector<TraceEvent> events = {
      // Repair out of NORMAL: no such edge in Figure 1 (and the chain
      // should have started from SETTLING).
      {0, a, EventKind::ModeTransition, view(1, 0), {}, 1, 2, 0},
  };
  const std::vector<Violation> v = RunChecker::check_modes(events);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_NE(v[0].detail.find("was in SETTLING"), std::string::npos);
  EXPECT_NE(v[1].detail.find("illegal edge"), std::string::npos);
}

TEST(RunChecker, ModeChainMustBeContinuous) {
  const ProcessId a = proc(0);
  const std::vector<TraceEvent> events = {
      {0, a, EventKind::ModeTransition, view(1, 0), {}, 3, 0, 2},  // S->N ok
      // Claims to leave SETTLING again, but the process is in NORMAL.
      {1, a, EventKind::ModeTransition, view(2, 0), {}, 2, 2, 2},
  };
  const std::vector<Violation> v = RunChecker::check_modes(events);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v[0].detail.find("but was in NORMAL"), std::string::npos);
}

}  // namespace
}  // namespace evs::obs
