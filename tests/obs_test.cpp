// Unit tests for the observability subsystem: TraceBus ring buffer and
// JSONL round trip, metrics registry snapshots, and the RunChecker's
// verdicts on hand-built traces (including the ISSUE-mandated corrupted
// trace where one message is delivered in two views).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/check.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace evs::obs {
namespace {

ProcessId proc(std::uint32_t site, std::uint32_t inc = 0) {
  return ProcessId{SiteId{site}, inc};
}

ViewId view(std::uint64_t epoch, std::uint32_t coord_site) {
  return ViewId{epoch, proc(coord_site)};
}

TEST(TraceBus, DisabledByDefaultAndDropsRecords) {
  TraceBus bus;
  EXPECT_FALSE(bus.enabled());
  bus.record({1, proc(0), EventKind::MessageSent});
  EXPECT_EQ(bus.recorded(), 0u);
  EXPECT_EQ(bus.size(), 0u);
}

TEST(TraceBus, RingOverwritesOldestAndCountsDrops) {
  TraceBus bus(4);
  bus.set_enabled(true);
  for (std::uint64_t i = 0; i < 6; ++i) {
    bus.record({i, proc(0), EventKind::MessageSent, {}, proc(0), i});
  }
  EXPECT_EQ(bus.recorded(), 6u);
  EXPECT_EQ(bus.dropped(), 2u);
  EXPECT_EQ(bus.size(), 4u);
  const std::vector<TraceEvent> events = bus.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest first: events 0 and 1 were overwritten.
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].seq, i + 2) << "slot " << i;
  }
}

TEST(TraceBus, JsonlRoundTripPreservesEveryField) {
  TraceBus bus(8);
  bus.set_enabled(true);
  bus.record({12345, proc(2, 1), EventKind::ViewInstalled, view(7, 2), proc(0),
              3, 42, 9});
  bus.record({99999, proc(0), EventKind::ModeTransition, view(8, 0), proc(1, 4),
              2, 2, 2});
  bus.record({0, proc(1), EventKind::MessageDelivered, view(7, 2), proc(2, 1),
              11, payload_hash({'h', 'i'}), 0});

  std::stringstream ss;
  bus.write_jsonl(ss);
  std::size_t skipped = 7;
  const std::vector<TraceEvent> back = read_jsonl(ss, &skipped);
  EXPECT_EQ(skipped, 0u);
  EXPECT_EQ(back, bus.events());
}

TEST(TraceBus, GroupFacadeLabelsEventsIntoTheSharedRing) {
  // The multi-group host hands each instance a GroupTraceBus; the stack
  // records group-obliviously and every event lands in the one shared
  // ring carrying its group label.
  TraceBus sink(8);
  sink.set_enabled(true);
  GroupTraceBus g1(sink, GroupId{1});
  GroupTraceBus g2(sink, GroupId{2});
  g1.record({10, proc(0), EventKind::MessageSent});
  g2.record({11, proc(0), EventKind::MessageSent});
  sink.record({12, proc(0), EventKind::MessageSent});  // default group

  const std::vector<TraceEvent> events = sink.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].group, GroupId{1});
  EXPECT_EQ(events[1].group, GroupId{2});
  EXPECT_EQ(events[2].group, kDefaultGroup);
  // The facade holds nothing of its own — it is a relabelling forwarder.
  EXPECT_EQ(g1.size(), 0u);

  // The label survives the jsonl round trip (and the default group keeps
  // the pre-multigroup line shape: no "g" field at all).
  std::stringstream ss;
  sink.write_jsonl(ss);
  const std::string text = ss.str();
  EXPECT_NE(text.find("\"g\":1"), std::string::npos);
  EXPECT_NE(text.find("\"g\":2"), std::string::npos);
  std::stringstream back_in(text);
  std::size_t skipped = 9;
  const std::vector<TraceEvent> back = read_jsonl(back_in, &skipped);
  EXPECT_EQ(skipped, 0u);
  EXPECT_EQ(back, events);
}

TEST(TraceBus, ReadJsonlSkipsUnparseableLines) {
  std::stringstream ss;
  ss << "{\"t\":5,\"proc\":\"1:0\",\"kind\":\"MessageSent\",\"view\":\"0:0:0\","
        "\"peer\":\"1:0\",\"seq\":1,\"value\":2,\"aux\":0}\n"
     << "this is not json\n"
     << "{\"t\":6,\"proc\":\"1:0\",\"kind\":\"NoSuchKind\",\"view\":\"0:0:0\","
        "\"peer\":\"1:0\",\"seq\":1,\"value\":2,\"aux\":0}\n"
     << "\n";  // blank lines are not an error
  std::size_t skipped = 0;
  const std::vector<TraceEvent> events = read_jsonl(ss, &skipped);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].time, 5u);
  EXPECT_EQ(events[0].kind, EventKind::MessageSent);
  EXPECT_EQ(skipped, 2u);
}

TEST(TraceBus, EventKindNamesRoundTrip) {
  for (int i = 1; i <= 22; ++i) {
    const auto kind = static_cast<EventKind>(i);
    EventKind back = EventKind::MessageSent;
    ASSERT_TRUE(parse_event_kind(to_string(kind), back)) << to_string(kind);
    EXPECT_EQ(back, kind);
  }
  EventKind out;
  EXPECT_FALSE(parse_event_kind("?", out));
  EXPECT_FALSE(parse_event_kind("Bogus", out));
}

TEST(TraceBus, RequestLifecycleEventsRoundTripThroughJsonl) {
  // All six Request* kinds, with the trace id in seq and the kind-specific
  // value/aux payloads, survive the JSONL round trip — trace_check
  // --request reassembles span trees from exactly these lines.
  const std::uint64_t trace_id = 0xdeadbeefcafe0123ull;
  TraceBus bus(16);
  bus.set_enabled(true);
  bus.record({100, proc(0), EventKind::RequestAdmitted, {}, {}, trace_id, 7,
              42});
  bus.record({105, proc(0), EventKind::RequestOrdered, view(3, 0), {},
              trace_id, 9, 0, GroupId{2}});
  bus.record({110, proc(1), EventKind::RequestDelivered, view(3, 0), proc(0),
              trace_id, 9, 0, GroupId{2}});
  bus.record({112, proc(1), EventKind::RequestApplied, view(3, 0), proc(0),
              trace_id, 9, 0, GroupId{2}});
  bus.record({115, proc(0), EventKind::RequestFenced, view(4, 0), {}, trace_id,
              4, 0, GroupId{2}});
  bus.record({120, proc(0), EventKind::RequestReplied, {}, {}, trace_id, 0,
              42});

  std::stringstream ss;
  bus.write_jsonl(ss);
  std::size_t skipped = 5;
  const std::vector<TraceEvent> back = read_jsonl(ss, &skipped);
  EXPECT_EQ(skipped, 0u);
  EXPECT_EQ(back, bus.events());
  for (const TraceEvent& e : back) {
    EXPECT_TRUE(is_request_event(e.kind)) << to_string(e.kind);
    EXPECT_EQ(e.seq, trace_id);
  }
  EXPECT_FALSE(is_request_event(EventKind::MessageDelivered));
  EXPECT_FALSE(is_request_event(EventKind::AdminCommand));
}

TEST(TraceBus, ObserverTapSeesEveryRecordedEvent) {
  TraceBus bus(8);
  std::vector<TraceEvent> seen;
  bus.set_observer([&seen](const TraceEvent& e) { seen.push_back(e); });
  // Disabled: the record is dropped before the tap.
  bus.record({1, proc(0), EventKind::MessageSent});
  EXPECT_TRUE(seen.empty());
  bus.set_enabled(true);
  bus.record({2, proc(0), EventKind::MessageSent, {}, proc(0), 5});
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].seq, 5u);
  // Through a group facade the tap sees the final (relabelled) event.
  GroupTraceBus g(bus, GroupId{3});
  g.record({3, proc(0), EventKind::MessageSent});
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[1].group, GroupId{3});
}

TEST(Metrics, HistogramExactQuantiles) {
  Histogram h;
  for (int i = 100; i >= 1; --i) h.record(i);  // unsorted on purpose
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.50), 50.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.95), 95.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 99.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
}

TEST(Metrics, HistogramReservoirCapBoundary) {
  Histogram h(100);
  EXPECT_EQ(h.sample_cap(), 100u);

  // Exactly at the cap: everything stored, quantiles exact.
  for (int i = 1; i <= 100; ++i) h.record(i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.stored_samples(), 100u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 50.0);

  // One past the cap: storage stays bounded, exact aggregates do not.
  h.record(1000);
  EXPECT_EQ(h.count(), 101u);
  EXPECT_EQ(h.stored_samples(), 100u);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);  // min/max/mean tracked exactly
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_NEAR(h.mean(), (5050.0 + 1000.0) / 101.0, 1e-9);

  // Far past the cap: still bounded, quantiles stay inside the data range.
  for (int i = 0; i < 10000; ++i) h.record(500);
  EXPECT_EQ(h.count(), 10101u);
  EXPECT_EQ(h.stored_samples(), 100u);
  EXPECT_GE(h.quantile(0.5), 1.0);
  EXPECT_LE(h.quantile(0.5), 1000.0);
  // The reservoir is dominated by the dominant value by now.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 500.0);
}

TEST(Metrics, HistogramDefaultCapIsLarge) {
  Histogram h;
  EXPECT_EQ(h.sample_cap(), Histogram::kDefaultSampleCap);
  for (std::size_t i = 0; i < Histogram::kDefaultSampleCap + 7; ++i)
    h.record(1.0);
  EXPECT_EQ(h.count(), Histogram::kDefaultSampleCap + 7);
  EXPECT_EQ(h.stored_samples(), Histogram::kDefaultSampleCap);
}

TEST(Metrics, PrometheusExposition) {
  MetricsRegistry reg;
  reg.counter("net.messages_sent").set(12);
  reg.gauge("mode.normal_us").set(1.5);
  reg.histogram("latency_us").record(10);
  reg.histogram("latency_us").record(20);

  const std::string prom = reg.to_prometheus();
  EXPECT_NE(prom.find("# TYPE net_messages_sent counter\n"), std::string::npos)
      << prom;
  EXPECT_NE(prom.find("net_messages_sent 12\n"), std::string::npos) << prom;
  EXPECT_NE(prom.find("# TYPE mode_normal_us gauge\n"), std::string::npos);
  EXPECT_NE(prom.find("mode_normal_us 1.5\n"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE latency_us summary\n"), std::string::npos);
  EXPECT_NE(prom.find("latency_us{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(prom.find("latency_us_count 2\n"), std::string::npos);
  EXPECT_NE(prom.find("latency_us_sum 30\n"), std::string::npos);
  // Exposition format: every line is a comment or `name{labels} value`.
  std::istringstream lines(prom);
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') continue;
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string name = line.substr(0, space);
    for (const char c : name.substr(0, name.find('{')))
      ASSERT_TRUE((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_' || c == ':')
          << line;
  }
}

TEST(TraceBus, EventsSincePagesAndReportsNextIndex) {
  TraceBus bus(8);
  bus.set_enabled(true);
  for (std::uint64_t i = 0; i < 5; ++i)
    bus.record({i, proc(0), EventKind::MessageSent, {}, proc(0), i});

  std::uint64_t next = 0;
  auto page = bus.events_since(0, 3, &next);
  ASSERT_EQ(page.size(), 3u);
  EXPECT_EQ(page[0].first, 0u);
  EXPECT_EQ(page[2].first, 2u);
  EXPECT_EQ(next, 3u);

  page = bus.events_since(next, 100, &next);
  ASSERT_EQ(page.size(), 2u);
  EXPECT_EQ(page[0].first, 3u);
  EXPECT_EQ(page[1].second.seq, 4u);
  EXPECT_EQ(next, 5u);

  // Caught up: empty page, next unchanged.
  page = bus.events_since(next, 100, &next);
  EXPECT_TRUE(page.empty());
  EXPECT_EQ(next, 5u);

  // Beyond the end behaves the same (a poller that over-advanced).
  page = bus.events_since(99, 100, &next);
  EXPECT_TRUE(page.empty());
  EXPECT_EQ(next, 99u);
}

TEST(TraceBus, EventsSinceSkipsEventsLostToTheRing) {
  TraceBus bus(4);
  bus.set_enabled(true);
  for (std::uint64_t i = 0; i < 10; ++i)
    bus.record({i, proc(0), EventKind::MessageSent, {}, proc(0), i});
  // Indices 0..5 fell out of the ring; the page starts at the oldest held.
  std::uint64_t next = 0;
  const auto page = bus.events_since(0, 100, &next);
  ASSERT_EQ(page.size(), 4u);
  EXPECT_EQ(page[0].first, 6u);
  EXPECT_EQ(page[0].second.seq, 6u);
  EXPECT_EQ(page[3].first, 9u);
  EXPECT_EQ(next, 10u);
}

TEST(TraceBus, WriteJsonlEventIndexRoundTrips) {
  const TraceEvent event{42, proc(1, 2), EventKind::MessageDelivered,
                         view(3, 1), proc(0, 1), 7, 123, 9};
  std::ostringstream os;
  const std::uint64_t index = 17;
  write_jsonl_event(os, event, &index);
  EXPECT_EQ(os.str().find("{\"i\":17,"), 0u) << os.str();
  // read_jsonl ignores the index field and recovers the event.
  std::istringstream is(os.str());
  const auto events = read_jsonl(is);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0], event);
}

TEST(Metrics, RegistrySnapshotsToSortedJson) {
  MetricsRegistry reg;
  EXPECT_TRUE(reg.empty());
  reg.counter("net.messages_sent").set(12);
  reg.counter("a.views_installed").add(3);
  reg.gauge("mode.normal_us").set(1.5);
  reg.histogram("latency_us").record(10);
  reg.histogram("latency_us").record(20);
  EXPECT_FALSE(reg.empty());

  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"net.messages_sent\":12"), std::string::npos) << json;
  EXPECT_NE(json.find("\"a.views_installed\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"mode.normal_us\":1.5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"latency_us\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\":2"), std::string::npos) << json;
  // std::map keys: "a.views_installed" sorts before "net.messages_sent".
  EXPECT_LT(json.find("a.views_installed"), json.find("net.messages_sent"));
}

// --- RunChecker on hand-built traces ---------------------------------------

// A clean two-process run: both install v1 then v2, both deliver the same
// message in v1, modes chain legally from SETTLING.
std::vector<TraceEvent> clean_trace() {
  const ProcessId a = proc(0), b = proc(1);
  const ViewId v1 = view(1, 0), v2 = view(2, 0);
  const std::uint64_t h = payload_hash({'m', '1'});
  return {
      {0, a, EventKind::ViewInstalled, v1, a, 0, 2},
      {0, b, EventKind::ViewInstalled, v1, a, 0, 2},
      {1, a, EventKind::ModeTransition, v1, {}, 3, 0, 2},  // Reconcile S->N
      {1, b, EventKind::ModeTransition, v1, {}, 3, 0, 2},
      {2, a, EventKind::MessageSent, v1, a, 1, h},
      {3, a, EventKind::MessageDelivered, v1, a, 1, h},
      {3, b, EventKind::MessageDelivered, v1, a, 1, h},
      {4, a, EventKind::EviewChange, v1, {}, 1, 2, 2},
      {5, a, EventKind::EviewChange, v1, {}, 2, 1, 1},  // coarsened
      {6, a, EventKind::ModeTransition, v2, {}, 0, 1, 0},  // Failure N->R
      {6, b, EventKind::ModeTransition, v2, {}, 0, 1, 0},
      {7, a, EventKind::ViewInstalled, v2, a, 1, 1},
      {7, b, EventKind::ViewInstalled, v2, a, 1, 1},
  };
}

TEST(RunChecker, CleanTraceHasNoViolations) {
  const std::vector<Violation> v = RunChecker::check(clean_trace());
  EXPECT_TRUE(v.empty()) << (v.empty() ? "" : v.front().str());
}

// The ISSUE-mandated corruption: the same message delivered in two
// different views must be flagged as a Uniqueness (P2.2) violation.
TEST(RunChecker, DuplicateDeliveryAcrossViewsIsUniquenessViolation) {
  std::vector<TraceEvent> events = clean_trace();
  const std::uint64_t h = payload_hash({'m', '1'});
  // Re-deliver a's v1 message at b, but inside v2.
  events.push_back(
      {8, proc(1), EventKind::MessageDelivered, view(2, 0), proc(0), 1, h});

  const std::vector<Violation> unique = RunChecker::check_uniqueness(events);
  ASSERT_EQ(unique.size(), 1u);
  EXPECT_EQ(unique[0].property, "Uniqueness (P2.2)");
  EXPECT_NE(unique[0].detail.find("2 views"), std::string::npos)
      << unique[0].str();
  // The full checker surfaces it too (plus the per-process duplicate,
  // which is an Integrity matter).
  const std::vector<Violation> all = RunChecker::check(events);
  EXPECT_FALSE(all.empty());
}

TEST(RunChecker, FlushDeliveryCountsAsDelivery) {
  // Same corruption but via a FlushDelivery event: still P2.2.
  std::vector<TraceEvent> events = clean_trace();
  const std::uint64_t h = payload_hash({'m', '1'});
  events.push_back(
      {8, proc(1), EventKind::FlushDelivery, view(2, 0), proc(0), 1, h});
  EXPECT_EQ(RunChecker::check_uniqueness(events).size(), 1u);
}

TEST(RunChecker, UnsentAndRepeatedDeliveriesAreIntegrityViolations) {
  const ProcessId a = proc(0), b = proc(1);
  const ViewId v1 = view(1, 0);
  const std::uint64_t h = payload_hash({'x'});
  const std::vector<TraceEvent> events = {
      {0, a, EventKind::MessageSent, v1, a, 1, h},
      {1, a, EventKind::MessageDelivered, v1, a, 1, h},
      {2, a, EventKind::MessageDelivered, v1, a, 1, h},  // delivered twice
      {3, b, EventKind::MessageDelivered, v1, b, 1, 777},  // never sent
  };
  const std::vector<Violation> v = RunChecker::check_integrity(events);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_NE(v[0].detail.find("more than once"), std::string::npos);
  EXPECT_NE(v[1].detail.find("never multicast"), std::string::npos);
}

TEST(RunChecker, DivergentDeliveriesAcrossSurvivorsIsAgreementViolation) {
  const ProcessId a = proc(0), b = proc(1);
  const ViewId v1 = view(1, 0), v2 = view(2, 0);
  const std::uint64_t h = payload_hash({'y'});
  const std::vector<TraceEvent> events = {
      {0, a, EventKind::ViewInstalled, v1, a, 0, 2},
      {0, b, EventKind::ViewInstalled, v1, a, 0, 2},
      {1, a, EventKind::MessageSent, v1, a, 1, h},
      {2, a, EventKind::MessageDelivered, v1, a, 1, h},
      // b never delivers it, yet both survive into v2.
      {3, a, EventKind::ViewInstalled, v2, a, 1, 2},
      {3, b, EventKind::ViewInstalled, v2, a, 1, 2},
  };
  const std::vector<Violation> v = RunChecker::check_agreement(events);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].property, "Agreement (P2.1)");
}

TEST(RunChecker, StructureMustCoarsenWithinAView) {
  const ProcessId a = proc(0);
  const ViewId v1 = view(1, 0);
  const std::vector<TraceEvent> events = {
      {0, a, EventKind::EviewChange, v1, {}, 1, 2, 2},
      {1, a, EventKind::EviewChange, v1, {}, 2, 3, 2},  // subviews grew
      {2, a, EventKind::EviewChange, v1, {}, 2, 3, 2},  // seq did not advance
  };
  const std::vector<Violation> v = RunChecker::check_structure(events);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_NE(v[0].detail.find("grew"), std::string::npos);
  EXPECT_NE(v[1].detail.find("strictly increase"), std::string::npos);
}

TEST(RunChecker, StructureMayGrowAcrossViews) {
  const ProcessId a = proc(0);
  const std::vector<TraceEvent> events = {
      {0, a, EventKind::EviewChange, view(1, 0), {}, 1, 1, 1},
      // New view: merged structures may be bigger; seq restarts.
      {1, a, EventKind::EviewChange, view(2, 0), {}, 0, 3, 3},
  };
  EXPECT_TRUE(RunChecker::check_structure(events).empty());
}

TEST(RunChecker, IllegalModeEdgeIsFlagged) {
  const ProcessId a = proc(0);
  const std::vector<TraceEvent> events = {
      // Repair out of NORMAL: no such edge in Figure 1 (and the chain
      // should have started from SETTLING).
      {0, a, EventKind::ModeTransition, view(1, 0), {}, 1, 2, 0},
  };
  const std::vector<Violation> v = RunChecker::check_modes(events);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_NE(v[0].detail.find("was in SETTLING"), std::string::npos);
  EXPECT_NE(v[1].detail.find("illegal edge"), std::string::npos);
}

TEST(RunChecker, ModeChainMustBeContinuous) {
  const ProcessId a = proc(0);
  const std::vector<TraceEvent> events = {
      {0, a, EventKind::ModeTransition, view(1, 0), {}, 3, 0, 2},  // S->N ok
      // Claims to leave SETTLING again, but the process is in NORMAL.
      {1, a, EventKind::ModeTransition, view(2, 0), {}, 2, 2, 2},
  };
  const std::vector<Violation> v = RunChecker::check_modes(events);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v[0].detail.find("but was in NORMAL"), std::string::npos);
}

// --- LiveChecker: the online oracle plane -----------------------------------

TEST(LiveChecker, CleanTraceStaysHealthy) {
  LiveChecker checker;
  for (const TraceEvent& e : clean_trace()) checker.observe(e);
  EXPECT_EQ(checker.events_checked(), clean_trace().size());
  EXPECT_EQ(checker.violations(), 0u);
  EXPECT_TRUE(checker.healthy());
  EXPECT_NE(checker.health_json().find("\"healthy\":true"), std::string::npos)
      << checker.health_json();
}

// The ISSUE acceptance check: an injected oracle violation raises the
// violation counter and flips health to unhealthy.
TEST(LiveChecker, InjectedDuplicateDeliveryFlipsHealth) {
  LiveChecker checker;
  for (const TraceEvent& e : clean_trace()) checker.observe(e);
  ASSERT_TRUE(checker.healthy());
  // Deliver a's v1 message at b a second time, in a different view: the
  // local Uniqueness slice catches it.
  const std::uint64_t h = payload_hash({'m', '1'});
  checker.observe(
      {8, proc(1), EventKind::MessageDelivered, view(2, 0), proc(0), 1, h});
  EXPECT_EQ(checker.violations(), 1u);
  EXPECT_FALSE(checker.healthy());
  ASSERT_EQ(checker.recent().size(), 1u);
  EXPECT_EQ(checker.recent().front().property, "Uniqueness (P2.2)");
  const std::string json = checker.health_json();
  EXPECT_NE(json.find("\"healthy\":false"), std::string::npos) << json;
  EXPECT_NE(json.find("\"violations\":1"), std::string::npos) << json;
  EXPECT_EQ(checker.violations_by_group().at(kDefaultGroup), 1u);
}

TEST(LiveChecker, SameViewRedeliveryIsIntegrity) {
  LiveChecker checker;
  const std::uint64_t h = payload_hash({'z'});
  checker.observe(
      {1, proc(0), EventKind::MessageDelivered, view(1, 0), proc(0), 1, h});
  checker.observe(
      {2, proc(0), EventKind::MessageDelivered, view(1, 0), proc(0), 1, h});
  ASSERT_EQ(checker.violations(), 1u);
  EXPECT_EQ(checker.recent().front().property, "Integrity (P2.3)");
}

TEST(LiveChecker, GroupsViolateIndependently) {
  // The same corrupted sequence under two group labels is two independent
  // violations; health_json breaks them out per group.
  LiveChecker checker;
  const std::uint64_t h = payload_hash({'g'});
  for (const GroupId g : {GroupId{1}, GroupId{4}}) {
    checker.observe({1, proc(0), EventKind::MessageDelivered, view(1, 0),
                     proc(0), 1, h, 0, g});
    checker.observe({2, proc(0), EventKind::MessageDelivered, view(1, 0),
                     proc(0), 1, h, 0, g});
  }
  EXPECT_EQ(checker.violations(), 2u);
  EXPECT_EQ(checker.violations_by_group().at(GroupId{1}), 1u);
  EXPECT_EQ(checker.violations_by_group().at(GroupId{4}), 1u);
  const std::string json = checker.health_json();
  EXPECT_NE(json.find("{\"id\":1,\"violations\":1}"), std::string::npos)
      << json;
  EXPECT_NE(json.find("{\"id\":4,\"violations\":1}"), std::string::npos)
      << json;
}

TEST(LiveChecker, RequestPhaseTimeRegressionIsViolation) {
  LiveChecker checker;
  const std::uint64_t trace_id = 77;
  checker.observe(
      {100, proc(0), EventKind::RequestAdmitted, {}, {}, trace_id, 7, 1});
  checker.observe(
      {110, proc(0), EventKind::RequestOrdered, view(1, 0), {}, trace_id, 9});
  EXPECT_TRUE(checker.healthy());
  // A later phase stamped *earlier* on the same process clock: broken.
  checker.observe(
      {90, proc(0), EventKind::RequestReplied, {}, {}, trace_id, 0, 1});
  ASSERT_EQ(checker.violations(), 1u);
  EXPECT_EQ(checker.recent().front().property, "Request phases");
}

TEST(LiveChecker, RequestIdReuseWithAdvancingTimeIsLegal) {
  // A rank regression (Admitted after Replied) is a new cycle of a reused
  // trace id; as long as time advances the checker stays quiet. Other
  // processes' phases are tracked separately and never compared across
  // clocks.
  LiveChecker checker;
  const std::uint64_t trace_id = 78;
  checker.observe(
      {100, proc(0), EventKind::RequestAdmitted, {}, {}, trace_id, 7, 1});
  checker.observe(
      {120, proc(0), EventKind::RequestReplied, {}, {}, trace_id, 0, 1});
  checker.observe(
      {130, proc(0), EventKind::RequestAdmitted, {}, {}, trace_id, 7, 2});
  // A different process delivers with a clock far behind: no comparison.
  checker.observe({5, proc(1), EventKind::RequestDelivered, view(1, 0),
                   proc(0), trace_id, 9});
  EXPECT_EQ(checker.violations(), 0u);
  EXPECT_TRUE(checker.healthy());
  // RequestFenced is out of band: never part of the phase chain.
  checker.observe(
      {1, proc(0), EventKind::RequestFenced, view(2, 0), {}, trace_id, 2});
  EXPECT_EQ(checker.violations(), 0u);
}

}  // namespace
}  // namespace evs::obs
