#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "codec/codec.hpp"

namespace evs {
namespace {

TEST(Codec, ScalarRoundTrip) {
  Encoder enc;
  enc.put_u8(0xab);
  enc.put_u16(0xbeef);
  enc.put_u32(0xdeadbeef);
  enc.put_u64(0x0123456789abcdefULL);
  enc.put_bool(true);
  enc.put_bool(false);

  Decoder dec(enc.buffer());
  EXPECT_EQ(dec.get_u8(), 0xab);
  EXPECT_EQ(dec.get_u16(), 0xbeef);
  EXPECT_EQ(dec.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(dec.get_u64(), 0x0123456789abcdefULL);
  EXPECT_TRUE(dec.get_bool());
  EXPECT_FALSE(dec.get_bool());
  EXPECT_TRUE(dec.at_end());
}

TEST(Codec, VarintRoundTripBoundaries) {
  const std::uint64_t values[] = {0,
                                  1,
                                  127,
                                  128,
                                  16383,
                                  16384,
                                  (1ULL << 32) - 1,
                                  1ULL << 32,
                                  std::numeric_limits<std::uint64_t>::max()};
  Encoder enc;
  for (const auto v : values) enc.put_varint(v);
  Decoder dec(enc.buffer());
  for (const auto v : values) EXPECT_EQ(dec.get_varint(), v);
  EXPECT_TRUE(dec.at_end());
}

TEST(Codec, VarintSmallValuesAreOneByte) {
  Encoder enc;
  enc.put_varint(42);
  EXPECT_EQ(enc.size(), 1u);
}

TEST(Codec, StringAndBytesRoundTrip) {
  Encoder enc;
  enc.put_string("hello view synchrony");
  enc.put_string("");
  enc.put_bytes(Bytes{1, 2, 3, 255});
  enc.put_bytes(Bytes{});

  Decoder dec(enc.buffer());
  EXPECT_EQ(dec.get_string(), "hello view synchrony");
  EXPECT_EQ(dec.get_string(), "");
  EXPECT_EQ(dec.get_bytes(), (Bytes{1, 2, 3, 255}));
  EXPECT_EQ(dec.get_bytes(), Bytes{});
  EXPECT_TRUE(dec.at_end());
}

TEST(Codec, IdRoundTrip) {
  const ProcessId p{SiteId{7}, 3};
  const ViewId v{42, p};
  const SubviewId sv{p, 9};
  const SvSetId ss{p, 11};

  Encoder enc;
  enc.put_site(SiteId{1});
  enc.put_process(p);
  enc.put_view_id(v);
  enc.put_subview_id(sv);
  enc.put_svset_id(ss);

  Decoder dec(enc.buffer());
  EXPECT_EQ(dec.get_site(), SiteId{1});
  EXPECT_EQ(dec.get_process(), p);
  EXPECT_EQ(dec.get_view_id(), v);
  EXPECT_EQ(dec.get_subview_id(), sv);
  EXPECT_EQ(dec.get_svset_id(), ss);
}

TEST(Codec, VectorRoundTrip) {
  const std::vector<std::uint64_t> values{1, 2, 3, 500, 100000};
  Encoder enc;
  enc.put_vector(values, [](Encoder& e, std::uint64_t v) { e.put_varint(v); });
  Decoder dec(enc.buffer());
  const auto out =
      dec.get_vector<std::uint64_t>([](Decoder& d) { return d.get_varint(); });
  EXPECT_EQ(out, values);
}

TEST(Codec, UnderflowThrows) {
  Encoder enc;
  enc.put_u16(7);
  Decoder dec(enc.buffer());
  EXPECT_EQ(dec.get_u16(), 7);
  EXPECT_THROW(dec.get_u8(), DecodeError);
}

TEST(Codec, TruncatedStringThrows) {
  Encoder enc;
  enc.put_varint(100);  // claims 100 bytes follow
  enc.put_u8('x');
  Decoder dec(enc.buffer());
  EXPECT_THROW(dec.get_string(), DecodeError);
}

TEST(Codec, HostileVectorLengthRejectedEarly) {
  Encoder enc;
  enc.put_varint(std::numeric_limits<std::uint64_t>::max());
  Decoder dec(enc.buffer());
  EXPECT_THROW(
      dec.get_vector<std::uint64_t>([](Decoder& d) { return d.get_varint(); }),
      DecodeError);
}

TEST(Codec, MalformedBoolThrows) {
  Encoder enc;
  enc.put_u8(7);
  Decoder dec(enc.buffer());
  EXPECT_THROW(dec.get_bool(), DecodeError);
}

TEST(Codec, OverlongVarintThrows) {
  Bytes buf(11, 0xff);  // continuation bit forever
  Decoder dec(buf);
  EXPECT_THROW(dec.get_varint(), DecodeError);
}

TEST(Codec, ExpectEndThrowsOnTrailingJunk) {
  Encoder enc;
  enc.put_u8(1);
  enc.put_u8(2);
  Decoder dec(enc.buffer());
  dec.get_u8();
  EXPECT_THROW(dec.expect_end(), DecodeError);
  dec.get_u8();
  EXPECT_NO_THROW(dec.expect_end());
}

}  // namespace
}  // namespace evs
