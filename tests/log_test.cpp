// Sharded-log semantics over the simulated world: position assignment,
// the global interleaving, coordinator-only writes, seal fencing, fill /
// trim, majority-only serving and post-heal state adoption — one shard
// (= one view-synchronous group) at a time; the multi-shard composition
// is exercised end-to-end by the loopback ctest (log_loopback_test.cpp).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "log/log_shard.hpp"
#include "support/object_cluster.hpp"

namespace evs::test {
namespace {

using log::LogShard;
using log::LogShardConfig;
using runtime::SvcOp;
using runtime::SvcRequest;
using runtime::SvcResponse;
using runtime::SvcStatus;

LogShardConfig shard_config(const std::vector<SiteId>& universe,
                            std::uint32_t index = 0,
                            std::uint32_t count = 1) {
  LogShardConfig cfg;
  cfg.object.endpoint.universe = universe;
  cfg.shard_index = index;
  cfg.shard_count = count;
  return cfg;
}

/// One svc response slot; svc_request promises exactly one completion.
struct Captured {
  bool done = false;
  SvcResponse resp;
};

runtime::SvcRespondFn capture(Captured& c) {
  return [&c](SvcResponse r) {
    EXPECT_FALSE(c.done);  // exactly-once
    c.resp = std::move(r);
    c.done = true;
  };
}

SvcRequest make_req(SvcOp op, std::string key = {}, std::string value = {}) {
  SvcRequest req;
  req.op = op;
  req.key = std::move(key);
  req.value = std::move(value);
  return req;
}

using Cluster = ObjectCluster<LogShard, LogShardConfig>;

/// Index whose live process is the installed view's coordinator.
std::size_t coordinator_index(Cluster& c,
                              const std::vector<std::size_t>& indices) {
  const ProcessId coord = c.obj(indices.front()).view().id.coordinator;
  for (const std::size_t i : indices) {
    if (c.world().live_process(c.site(i)) == coord) return i;
  }
  ADD_FAILURE() << "coordinator not among live members";
  return indices.front();
}

/// Appends through the shard's svc surface and waits for the ordered
/// completion; returns the response.
SvcResponse append(Cluster& c, std::size_t at, const std::string& record) {
  Captured cap;
  c.obj(at).svc_request(make_req(SvcOp::LogAppend, "k", record),
                        capture(cap));
  EXPECT_TRUE(c.await([&]() { return cap.done; }));
  return cap.resp;
}

SvcResponse read(Cluster& c, std::size_t at, std::uint64_t global) {
  Captured cap;
  c.obj(at).svc_request(
      make_req(SvcOp::LogRead, std::to_string(global)), capture(cap));
  EXPECT_TRUE(cap.done);  // reads answer synchronously
  return cap.resp;
}

TEST(LogShard, AppendsAssignDenseGlobalPositions) {
  Cluster c(3, 1, [](const auto& u) { return shard_config(u); });
  ASSERT_TRUE(c.await_all_normal(c.all_indices()));
  const std::size_t coord = coordinator_index(c, c.all_indices());

  for (int i = 0; i < 5; ++i) {
    const SvcResponse resp = append(c, coord, "r" + std::to_string(i));
    ASSERT_EQ(resp.status, SvcStatus::Ok);
    // G=1: global position == local position, assigned densely in order.
    EXPECT_EQ(resp.value, std::to_string(i));
  }
  ASSERT_TRUE(c.await([&]() {
    for (const std::size_t i : c.all_indices())
      if (c.obj(i).records() != 5) return false;
    return true;
  }));
  // Every replica agrees on tail and contents; reads serve anywhere.
  for (const std::size_t i : c.all_indices()) {
    EXPECT_EQ(c.obj(i).global_tail(), 5u);
    for (int p = 0; p < 5; ++p)
      EXPECT_EQ(read(c, i, p).value, "Dr" + std::to_string(p));
  }
  // Beyond the tail: not yet assigned — retry, not junk.
  EXPECT_EQ(read(c, coord, 5).status, SvcStatus::Conflict);
}

TEST(LogShard, GlobalPositionsInterleaveByShardIndex) {
  // Shard 1 of G=4 owns the residue class {1, 5, 9, ...}.
  Cluster c(3, 2, [](const auto& u) { return shard_config(u, 1, 4); });
  ASSERT_TRUE(c.await_all_normal(c.all_indices()));
  const std::size_t coord = coordinator_index(c, c.all_indices());

  EXPECT_EQ(c.obj(coord).global_tail(), 1u);  // empty shard: next is 0*4+1
  for (int i = 0; i < 3; ++i) {
    const SvcResponse resp = append(c, coord, "x");
    ASSERT_EQ(resp.status, SvcStatus::Ok);
    EXPECT_EQ(resp.value, std::to_string(i * 4 + 1));
  }
  EXPECT_EQ(c.obj(coord).global_tail(), 3u * 4 + 1);
  // A position of another shard's residue class is misrouted here.
  EXPECT_EQ(read(c, coord, 2).status, SvcStatus::Unsupported);
}

TEST(LogShard, WritesRedirectToCoordinatorReadsServeAnywhere) {
  Cluster c(3, 3, [](const auto& u) { return shard_config(u); });
  ASSERT_TRUE(c.await_all_normal(c.all_indices()));
  const std::size_t coord = coordinator_index(c, c.all_indices());
  const std::size_t follower = (coord + 1) % 3;

  // Typed redirect: the follower names the coordinator's site.
  Captured cap;
  c.obj(follower).svc_request(make_req(SvcOp::LogAppend, "k", "v"),
                              capture(cap));
  ASSERT_TRUE(cap.done);
  EXPECT_EQ(cap.resp.status, SvcStatus::NotLeader);
  EXPECT_EQ(cap.resp.coordinator_site,
            c.obj(follower).view().id.coordinator.site.value);

  ASSERT_EQ(append(c, coord, "v").status, SvcStatus::Ok);
  ASSERT_TRUE(c.await([&]() { return c.obj(follower).records() == 1; }));
  EXPECT_EQ(read(c, follower, 0).value, "Dv");
}

TEST(LogShard, SealFencesAppendsUntilViewChange) {
  Cluster c(3, 4, [](const auto& u) { return shard_config(u); });
  ASSERT_TRUE(c.await_all_normal(c.all_indices()));
  std::size_t coord = coordinator_index(c, c.all_indices());
  ASSERT_EQ(append(c, coord, "before").status, SvcStatus::Ok);

  // Seal at the installed epoch: the CORFU fence.
  const std::uint64_t epoch = c.obj(coord).view_epoch();
  Captured seal;
  c.obj(coord).svc_request(
      make_req(SvcOp::LogSeal, std::to_string(epoch)), capture(seal));
  ASSERT_TRUE(c.await([&]() { return seal.done; }));
  ASSERT_EQ(seal.resp.status, SvcStatus::Ok);
  ASSERT_TRUE(c.await([&]() {
    for (const std::size_t i : c.all_indices())
      if (!c.obj(i).sealed()) return false;
    return true;
  }));

  // Sealed: appends bounce with the epoch-fence outcome; reads still work.
  Captured fenced;
  c.obj(coord).svc_request(make_req(SvcOp::LogAppend, "k", "during"),
                           capture(fenced));
  ASSERT_TRUE(fenced.done);
  EXPECT_EQ(fenced.resp.status, SvcStatus::InvalidEpoch);
  EXPECT_EQ(read(c, coord, 0).value, "Dbefore");

  // A view change outruns the seal and re-opens the shard.
  const std::size_t victim = (coord + 1) % 3;
  c.world().crash_site(c.site(victim));
  const std::vector<std::size_t> rest = {coord, (coord + 2) % 3};
  ASSERT_TRUE(c.await_all_normal(rest));
  ASSERT_TRUE(c.await([&]() { return !c.obj(coord).sealed(); }));
  coord = coordinator_index(c, rest);
  const SvcResponse after = append(c, coord, "after");
  ASSERT_EQ(after.status, SvcStatus::Ok);
  EXPECT_EQ(after.value, "1");
}

TEST(LogShard, FillPlugsHolesAndTrimDiscardsPrefix) {
  Cluster c(3, 5, [](const auto& u) { return shard_config(u); });
  ASSERT_TRUE(c.await_all_normal(c.all_indices()));
  const std::size_t coord = coordinator_index(c, c.all_indices());
  for (int i = 0; i < 3; ++i)
    ASSERT_EQ(append(c, coord, "r" + std::to_string(i)).status,
              SvcStatus::Ok);

  // Fill position 5: everything up to it becomes junk, the tail advances
  // past it — in-order global readers are unblocked.
  Captured fill;
  c.obj(coord).svc_request(make_req(SvcOp::LogFill, "5"), capture(fill));
  ASSERT_TRUE(c.await([&]() { return fill.done; }));
  ASSERT_EQ(fill.resp.status, SvcStatus::Ok);
  EXPECT_EQ(c.obj(coord).global_tail(), 6u);
  EXPECT_EQ(read(c, coord, 4).value, "F");
  EXPECT_EQ(read(c, coord, 5).value, "F");
  EXPECT_EQ(read(c, coord, 2).value, "Dr2");

  // Filling an already-written position is a no-op, not an overwrite.
  Captured refill;
  c.obj(coord).svc_request(make_req(SvcOp::LogFill, "1"), capture(refill));
  ASSERT_TRUE(c.await([&]() { return refill.done; }));
  EXPECT_EQ(read(c, coord, 1).value, "Dr1");

  // Trim discards the prefix below position 2.
  Captured trim;
  c.obj(coord).svc_request(make_req(SvcOp::LogTrim, "2"), capture(trim));
  ASSERT_TRUE(c.await([&]() { return trim.done; }));
  ASSERT_EQ(trim.resp.status, SvcStatus::Ok);
  EXPECT_EQ(read(c, coord, 0).value, "T");
  EXPECT_EQ(read(c, coord, 1).value, "T");
  EXPECT_EQ(read(c, coord, 2).value, "Dr2");
}

TEST(LogShard, MinorityPartitionRefusesServiceAndHealsClean) {
  Cluster c(3, 6, [](const auto& u) { return shard_config(u); });
  ASSERT_TRUE(c.await_all_normal(c.all_indices()));
  std::size_t coord = coordinator_index(c, c.all_indices());

  // Isolate one non-coordinator member; the pair keeps the majority.
  const std::size_t minority = (coord + 1) % 3;
  const std::size_t other = (coord + 2) % 3;
  c.world().network().set_partition(
      {{c.site(coord), c.site(other)}, {c.site(minority)}});
  const std::vector<std::size_t> pair = {coord, other};
  ASSERT_TRUE(c.await_all_normal(pair));
  ASSERT_TRUE(c.await([&]() { return !c.obj(minority).serving_normal(); }));

  // The minority cannot fork the log: no appends, only Unavailable.
  Captured shut;
  c.obj(minority).svc_request(make_req(SvcOp::LogAppend, "k", "forked"),
                              capture(shut));
  ASSERT_TRUE(shut.done);
  EXPECT_EQ(shut.resp.status, SvcStatus::Unavailable);

  // The majority keeps appending.
  coord = coordinator_index(c, pair);
  ASSERT_EQ(append(c, coord, "maj0").status, SvcStatus::Ok);
  ASSERT_EQ(append(c, coord, "maj1").status, SvcStatus::Ok);

  // Heal: the rejoining member adopts the majority's prefix.
  c.world().network().heal();
  ASSERT_TRUE(c.await_all_normal(c.all_indices()));
  ASSERT_TRUE(c.await([&]() { return c.obj(minority).records() == 2; }));
  EXPECT_EQ(read(c, minority, 0).value, "Dmaj0");
  EXPECT_EQ(read(c, minority, 1).value, "Dmaj1");
}

TEST(LogShard, RestartedMemberCatchesUpByStateTransfer) {
  Cluster c(3, 7, [](const auto& u) { return shard_config(u); });
  ASSERT_TRUE(c.await_all_normal(c.all_indices()));
  std::size_t coord = coordinator_index(c, c.all_indices());

  const std::size_t victim = (coord + 1) % 3;
  c.world().crash_site(c.site(victim));
  const std::vector<std::size_t> rest = {coord, (coord + 2) % 3};
  ASSERT_TRUE(c.await_all_normal(rest));
  coord = coordinator_index(c, rest);
  for (int i = 0; i < 4; ++i)
    ASSERT_EQ(append(c, coord, "r" + std::to_string(i)).status,
              SvcStatus::Ok);

  // The restarted incarnation must arrive with the full prefix.
  c.spawn_at(c.site(victim));
  ASSERT_TRUE(c.await_all_normal(c.all_indices()));
  ASSERT_TRUE(c.await([&]() { return c.obj(victim).records() == 4; }));
  EXPECT_EQ(c.obj(victim).global_tail(), 4u);
  for (int p = 0; p < 4; ++p)
    EXPECT_EQ(read(c, victim, p).value, "Dr" + std::to_string(p));
}

}  // namespace
}  // namespace evs::test
